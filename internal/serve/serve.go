// Package serve runs the Cosmos predictor as a long-lived service: a
// server node ingests per-client coherence-message streams over the
// reliable transport (internal/reliable), feeds each stream its own
// core.Predictor, and answers every observation with the predictor's
// next-message prediction. It is the online counterpart of the batch
// evaluator — the same predictor, kept warm across an arbitrarily long
// message stream, expected to survive being killed at any instant.
//
// Three robustness layers make the service crash-recoverable:
//
//   - A versioned, checksummed snapshot container (CPSS, cpss.go)
//     serializes the whole service state — per-stream predictor
//     snapshots (the canonical core encoding), applied/acked cursors,
//     and the unacknowledged response tail — with the CTRC v2 footer
//     idiom: trailing payload length plus CRC-32C, so truncation,
//     corruption, and version skew all fail loudly and distinctly.
//     Snapshots are content-addressed on disk (store.go) next to a
//     write-ahead log of observations applied since the snapshot
//     (wal.go); kill the process anywhere and Recover rebuilds
//     byte-equivalent predictor state.
//
//   - Bounded-queue backpressure (server.go): the ingest queue never
//     exceeds its configured bound. On overflow the server sheds
//     deterministically — queries before observations, lower-priority
//     streams before higher — and counts every shed per stream.
//     Entries that sit in the queue past their deadline are timed out
//     rather than served stale, and a forward-progress watchdog fails
//     the server with a diagnostic dump (the internal/machine diagnose
//     idiom) instead of hanging silently.
//
//   - A crash/chaos harness (harness.go) that drives real clients over
//     a faulty wire, kills the server at a seeded instant — tearing
//     the unsynced WAL tail at an arbitrary byte — restores it from
//     disk, resynchronizes the clients, and proves the predictions
//     byte-identical to an uninterrupted oracle. internal/chaos sweeps
//     it across seeds.
//
// # Wire protocol
//
// Serve links reuse coherence.Msg as the frame, with the Grant field —
// meaningless between a prediction client and server — repurposed as
// the message discriminator (helpers below own the mapping):
//
//	client -> server
//	  observation  Grant=MsgInvalid  Type/Requestor = observed tuple, Addr = block
//	  ack          Grant=SpecPush    Addr = count of responses received
//	  query        Grant=GetROReq    Addr = block to look up
//	server -> client
//	  prediction   Grant=SpecPush    Type/Requestor = predicted tuple, Addr = block
//	  noPrediction Grant=InvalROReq  Addr = block (predictor has no entry)
//	  queryHit     Grant=GetROReq    Type/Requestor = predicted tuple, Addr = block
//	  queryMiss    Grant=GetRWReq    Addr = block
//	  queryTimeout Grant=UpgradeReq  Addr = block (query waited past DeadlineNs)
//
// Per-stream exactly-once semantics ride on the transport's FIFO
// guarantee plus durable cursors: the server applies observations in
// arrival order, counts them per stream, and persists the count; after
// a crash each client asks the server for its cursor and resends from
// there. Responses regenerate deterministically during WAL replay, so
// a response lost with the crashed process is re-sent byte-identical.
package serve

import (
	"fmt"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
	"github.com/cosmos-coherence/cosmos/internal/core"
	"github.com/cosmos-coherence/cosmos/internal/sim"
)

// Grant-field discriminators of the serve wire protocol. The values
// are arbitrary distinct MsgTypes; their directory-protocol meanings
// do not apply on serve links.
const (
	grantObservation  = coherence.MsgInvalid
	grantAck          = coherence.SpecPush
	grantQuery        = coherence.GetROReq
	grantPrediction   = coherence.SpecPush
	grantNoPrediction = coherence.InvalROReq
	grantQueryHit     = coherence.GetROReq
	grantQueryMiss    = coherence.GetRWReq
	grantQueryTimeout = coherence.UpgradeReq
)

// fillerType keeps control messages valid on a network that rejects
// MsgInvalid frames; receivers dispatch on Grant and ignore it.
const fillerType = coherence.GetROReq

// Response is one answer to one observation: the predictor's guess at
// the stream's next message for that block, made immediately after the
// observation was applied. The sequence number is implicit — responses
// for a stream are generated, logged, and delivered in applied order.
type Response struct {
	Pred coherence.Tuple
	OK   bool
}

// obsMsg encodes an observation from client src.
func obsMsg(src, dst coherence.NodeID, addr coherence.Addr, tup coherence.Tuple) coherence.Msg {
	return coherence.Msg{Src: src, Dst: dst, Type: tup.Type, Requestor: tup.Sender,
		Addr: addr, Grant: grantObservation}
}

// ackMsg encodes "I have received n responses".
func ackMsg(src, dst coherence.NodeID, n uint64) coherence.Msg {
	return coherence.Msg{Src: src, Dst: dst, Type: fillerType,
		Addr: coherence.Addr(n), Grant: grantAck}
}

// queryMsg encodes a read-only prediction lookup.
func queryMsg(src, dst coherence.NodeID, addr coherence.Addr) coherence.Msg {
	return coherence.Msg{Src: src, Dst: dst, Type: fillerType,
		Addr: addr, Grant: grantQuery}
}

// responseMsg encodes the answer to an observation.
func responseMsg(src, dst coherence.NodeID, addr coherence.Addr, r Response) coherence.Msg {
	if !r.OK {
		return coherence.Msg{Src: src, Dst: dst, Type: fillerType,
			Addr: addr, Grant: grantNoPrediction}
	}
	return coherence.Msg{Src: src, Dst: dst, Type: r.Pred.Type, Requestor: r.Pred.Sender,
		Addr: addr, Grant: grantPrediction}
}

// queryTimeoutMsg tells a client its query waited past DeadlineNs and
// was never served — a definitive "asked and not answered", as opposed
// to the silence of a lost frame.
func queryTimeoutMsg(src, dst coherence.NodeID, addr coherence.Addr) coherence.Msg {
	return coherence.Msg{Src: src, Dst: dst, Type: fillerType,
		Addr: addr, Grant: grantQueryTimeout}
}

// queryRespMsg encodes the answer to a query.
func queryRespMsg(src, dst coherence.NodeID, addr coherence.Addr, r Response) coherence.Msg {
	if !r.OK {
		return coherence.Msg{Src: src, Dst: dst, Type: fillerType,
			Addr: addr, Grant: grantQueryMiss}
	}
	return coherence.Msg{Src: src, Dst: dst, Type: r.Pred.Type, Requestor: r.Pred.Sender,
		Addr: addr, Grant: grantQueryHit}
}

// decodeResponse inverts responseMsg/queryRespMsg.
func decodeResponse(m coherence.Msg) (Response, bool) {
	switch m.Grant {
	case grantPrediction, grantQueryHit:
		return Response{Pred: coherence.Tuple{Sender: m.Requestor, Type: m.Type}, OK: true},
			m.Grant == grantQueryHit
	case grantNoPrediction:
		return Response{}, false
	case grantQueryMiss:
		return Response{}, true
	case grantQueryTimeout:
		// Decodes like a miss; callers that care whether the query timed
		// out (rather than found no entry) dispatch on Grant directly.
		return Response{}, true
	default:
		panic(fmt.Sprintf("serve: not a response: %v grant=%v", m, m.Grant))
	}
}

// Config parameterizes a Server.
type Config struct {
	// Node is the server's node id on the transport. Clients are the
	// nodes 0..Streams-1, so Node must lie outside that range
	// (conventionally Node == Streams).
	Node coherence.NodeID
	// Streams is the number of client streams. Each stream gets its own
	// predictor; stream i's messages arrive from node i.
	Streams int
	// Predictor configures every per-stream predictor.
	Predictor core.Config
	// MaxQueue bounds the ingest queue (observations + queries awaiting
	// service). 0 means the default of 256. The queue NEVER exceeds
	// this bound: overflow sheds deterministically instead of growing.
	MaxQueue int
	// ProcessNs is the simulated service time per queue entry.
	// 0 means the default of 50ns.
	ProcessNs sim.Time
	// DeadlineNs is the per-stream queue timeout: an entry that waited
	// longer than this before reaching the head is timed out, not
	// served. 0 disables deadlines.
	DeadlineNs sim.Time
	// SnapshotEvery checkpoints the service state to the store after
	// this many applied observations. 0 disables periodic snapshots
	// (the WAL still makes every observation durable).
	SnapshotEvery int
	// WatchdogNs fails the server with a diagnostic dump when the queue
	// holds work but nothing was processed for this much simulated
	// time. 0 disables the watchdog.
	WatchdogNs sim.Time
	// Priority ranks streams for shedding: higher values survive
	// overload longer. nil means all streams rank equal (priority 0).
	// Must be nil or of length Streams, with every entry in
	// [0, maxPriority).
	Priority []int
}

// maxPriority is the exclusive upper bound on Config.Priority entries.
// Shed weights encode observation-vs-query as an offset of this size,
// so priorities must stay strictly below it (and non-negative) to keep
// "queries shed before any observation" true at every priority.
const maxPriority = 1 << 20

// withDefaults returns cfg with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.ProcessNs == 0 {
		c.ProcessNs = 50
	}
	return c
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Streams < 1 {
		return fmt.Errorf("serve: Streams %d < 1", c.Streams)
	}
	if int(c.Node) >= 0 && int(c.Node) < c.Streams {
		return fmt.Errorf("serve: server node %v collides with client stream nodes 0..%d",
			c.Node, c.Streams-1)
	}
	if err := c.Predictor.Validate(); err != nil {
		return fmt.Errorf("serve: predictor: %w", err)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("serve: MaxQueue %d < 0", c.MaxQueue)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("serve: SnapshotEvery %d < 0", c.SnapshotEvery)
	}
	if c.Priority != nil && len(c.Priority) != c.Streams {
		return fmt.Errorf("serve: Priority has %d entries for %d streams", len(c.Priority), c.Streams)
	}
	for i, p := range c.Priority {
		if p < 0 || p >= maxPriority {
			return fmt.Errorf("serve: Priority[%d] = %d outside [0, %d)", i, p, maxPriority)
		}
	}
	return nil
}
