package serve

import (
	"fmt"
	"strings"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
	"github.com/cosmos-coherence/cosmos/internal/core"
	"github.com/cosmos-coherence/cosmos/internal/reliable"
	"github.com/cosmos-coherence/cosmos/internal/sim"
)

// Stats counts the server's work and its shedding decisions. The
// per-stream slices are indexed by stream id.
type Stats struct {
	// Applied counts observations applied across all streams; PredHits
	// of those, how many arrived as their stream's predictor predicted.
	Applied  uint64
	PredHits uint64
	// Queries counts answered read-only lookups.
	Queries uint64
	// Shed counts queue-overflow rejections per stream; ShedQueries of
	// the total were queries (shed before any observation).
	Shed        []uint64
	ShedQueries uint64
	// TimedOut counts entries that waited past DeadlineNs per stream.
	TimedOut []uint64
	// Dropped counts observations discarded because they arrived after
	// a shed or timeout broke their stream's contiguity, per stream —
	// rejected at enqueue while the stream lags, or dropped at the
	// queue head if they were already queued when the break landed.
	Dropped []uint64
	// MaxQueueDepth is the high-water mark of the ingest queue; it can
	// never exceed Config.MaxQueue.
	MaxQueueDepth int
	// Checkpoints counts snapshots written; Resyncs, client resyncs.
	Checkpoints uint64
	Resyncs     uint64
}

// entry is one queued unit of work.
type entry struct {
	stream int
	query  bool
	addr   coherence.Addr
	tup    coherence.Tuple // observations only
	at     sim.Time        // arrival time, for deadlines
	idx    uint64          // arrival counter, for deterministic shed ties
}

// stream is one client's server-side state.
type stream struct {
	pred    *core.Predictor
	applied uint64
	acked   uint64
	resp    []Response // responses for sequences [acked, applied)
	// lagging marks a stream whose observation contiguity was broken by
	// a shed or timeout; breakIdx is the arrival index of the first lost
	// observation. Observations that arrived before the hole are still
	// contiguous and apply normally; anything that arrived after it is
	// dropped (never applied over the hole) until the client resyncs.
	lagging  bool
	breakIdx uint64
	priority int
}

// breakContiguity marks a stream lagging at the lost observation's
// arrival index, keeping the earliest hole across repeated breaks.
func breakContiguity(st *stream, idx uint64) {
	if !st.lagging || idx < st.breakIdx {
		st.breakIdx = idx
	}
	st.lagging = true
}

// Server is the crash-recoverable prediction service. Create one with
// New, which also performs recovery: if the store holds state from a
// previous life, the server restores it and replays the WAL before
// accepting traffic, so a freshly constructed server is always at the
// durable boundary of its predecessor.
type Server struct {
	cfg     Config
	eng     *sim.Engine
	tr      *reliable.Transport
	store   *Store
	wal     *WAL
	digest  [32]byte
	streams []*stream

	queue     []entry
	busy      bool
	arrivals  uint64
	processed uint64
	sinceSync int
	sinceSnap int

	watchdogArmed bool
	lastProgress  uint64

	// stalled freezes the worker; a test hook for exercising the
	// watchdog without inventing an organic stall.
	stalled bool

	failure   error
	onFailure func(error)
	stats     Stats

	// processEv and watchdogEv hold the worker and watchdog steps as
	// prebuilt events: scheduling a bound method (s.process) mints a
	// fresh closure per call, which the per-entry kick path would pay
	// on every observation.
	processEv  sim.Event
	watchdogEv sim.Event
}

// walSyncEvery is how many appended records ride between fsyncs: the
// window a crash can tear. Recovery resynchronizes whatever it loses,
// so this trades a bounded resend span for not fsyncing every append.
const walSyncEvery = 8

// New builds a server over the transport, recovering any state the
// store holds. The transport's binding for cfg.Node is taken over.
func New(eng *sim.Engine, tr *reliable.Transport, store *Store, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, eng: eng, tr: tr, store: store}
	s.processEv = s.process
	s.watchdogEv = s.watchdog
	s.stats.Shed = make([]uint64, cfg.Streams)
	s.stats.TimedOut = make([]uint64, cfg.Streams)
	s.stats.Dropped = make([]uint64, cfg.Streams)

	rec, err := store.Recover()
	if err != nil {
		return nil, err
	}
	if !rec.Fresh && len(rec.Base.Streams) != cfg.Streams {
		return nil, fmt.Errorf("serve: store holds %d streams, config says %d",
			len(rec.Base.Streams), cfg.Streams)
	}
	s.streams = make([]*stream, cfg.Streams)
	for i := range s.streams {
		p, err := core.New(cfg.Predictor)
		if err != nil {
			return nil, err
		}
		st := &stream{pred: p}
		if cfg.Priority != nil {
			st.priority = cfg.Priority[i]
		}
		if !rec.Fresh {
			base := rec.Base.Streams[i]
			if err := p.Restore(base.Snap); err != nil {
				return nil, fmt.Errorf("serve: stream %d: %w", i, err)
			}
			if p.Config() != cfg.Predictor {
				return nil, fmt.Errorf("serve: stream %d snapshot built with %+v, config says %+v",
					i, p.Config(), cfg.Predictor)
			}
			st.applied, st.acked = base.Applied, base.Acked
			st.resp = append(st.resp, base.Resp...)
		}
		s.streams[i] = st
	}
	// Replay the WAL through the predictors, regenerating the exact
	// responses the crashed server produced for these observations.
	for _, r := range rec.Records {
		s.applyObservation(s.streams[r.Stream], r.Addr, r.Tup)
	}
	// Recovery is itself a checkpoint: the replayed state becomes the
	// new base and the torn generation is retired.
	if err := s.checkpoint(); err != nil {
		return nil, err
	}
	tr.Bind(cfg.Node, s.onMsg)
	return s, nil
}

// applyObservation runs one observation through a stream's predictor
// and logs the response. Shared verbatim by live serving and WAL
// replay — which is what makes replayed responses byte-identical.
func (s *Server) applyObservation(st *stream, addr coherence.Addr, tup coherence.Tuple) Response {
	_, predicted, correct := st.pred.Observe(addr, tup)
	if predicted && correct {
		s.stats.PredHits++
	}
	st.applied++
	next, ok := st.pred.Predict(addr)
	r := Response{Pred: next, OK: ok}
	st.resp = append(st.resp, r)
	s.stats.Applied++
	return r
}

// Err returns the server's terminal failure, if any.
func (s *Server) Err() error { return s.failure }

// OnFailure registers a callback invoked once on terminal failure.
func (s *Server) OnFailure(f func(error)) { s.onFailure = f }

// Stats returns a deep copy of the counters.
func (s *Server) Stats() Stats {
	st := s.stats
	st.Shed = append([]uint64(nil), s.stats.Shed...)
	st.TimedOut = append([]uint64(nil), s.stats.TimedOut...)
	st.Dropped = append([]uint64(nil), s.stats.Dropped...)
	return st
}

// QueueDepth returns the current ingest queue length.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Cursor returns a stream's durable-order cursor: how many of its
// observations have been applied.
func (s *Server) Cursor(streamID int) uint64 { return s.streams[streamID].applied }

// Lagging reports whether the stream needs a resync before its
// observations are accepted again.
func (s *Server) Lagging(streamID int) bool { return s.streams[streamID].lagging }

// StateDigest returns the stream's predictor state digest — the
// byte-equivalence oracle hook.
func (s *Server) StateDigest(streamID int) [32]byte {
	return s.streams[streamID].pred.StateDigest()
}

// PredictorSnapshot returns the stream's canonical predictor bytes.
func (s *Server) PredictorSnapshot(streamID int) []byte {
	return s.streams[streamID].pred.Snapshot()
}

// snapshotState assembles the durable State from live state.
func (s *Server) snapshotState() State {
	st := State{Streams: make([]StreamState, len(s.streams))}
	for i, str := range s.streams {
		st.Streams[i] = StreamState{
			Applied: str.applied,
			Acked:   str.acked,
			Resp:    append([]Response(nil), str.resp...),
			Snap:    str.pred.Snapshot(),
		}
	}
	return st
}

// checkpoint writes the current state as a new store generation.
func (s *Server) checkpoint() error {
	d, w, err := s.store.Checkpoint(s.snapshotState())
	if err != nil {
		return err
	}
	if s.wal != nil {
		s.wal.Close()
	}
	s.digest, s.wal = d, w
	s.sinceSnap, s.sinceSync = 0, 0
	s.stats.Checkpoints++
	return nil
}

// Close checkpoints once more and releases the WAL. The server must
// not be used afterwards.
func (s *Server) Close() error {
	if s.failure != nil {
		s.wal.Close()
		return s.failure
	}
	if err := s.checkpoint(); err != nil {
		return err
	}
	return s.wal.Close()
}

// Abandon releases file handles without checkpointing — the crash
// path: whatever was not yet durable is meant to be lost.
func (s *Server) Abandon() {
	if s.wal != nil {
		s.wal.Close()
	}
}

// WAL exposes the live log so the crash harness can tear its unsynced
// tail.
func (s *Server) WAL() *WAL { return s.wal }

// Resync re-admits a stream after a crash or a shed. The client
// reports how many responses it has received; the server prunes its
// retained tail to that point, clears the lagging flag, and re-sends
// every retained response the client is missing. It returns the
// stream's cursor: the client must resend observations from there.
func (s *Server) Resync(streamID int, received uint64) (uint64, error) {
	st := s.streams[streamID]
	if received < st.acked {
		return 0, fmt.Errorf("serve: stream %d resync at %d behind acknowledged %d",
			streamID, received, st.acked)
	}
	// The client may have received responses the crash un-applied
	// (sent, then the WAL tail tore); it rewinds to the durable cursor
	// and will observe the regenerated tail matching what it saw.
	eff := received
	if eff > st.applied {
		eff = st.applied
	}
	st.resp = st.resp[eff-st.acked:]
	st.acked = eff
	st.lagging = false
	s.stats.Resyncs++
	for i, r := range st.resp {
		seq := st.acked + uint64(i)
		s.tr.Send(responseMsg(s.cfg.Node, coherence.NodeID(streamID), coherence.Addr(seq), r))
	}
	return st.applied, nil
}

// onMsg dispatches one arriving frame.
func (s *Server) onMsg(m coherence.Msg) {
	if s.failure != nil {
		return
	}
	id := int(m.Src)
	if id < 0 || id >= len(s.streams) {
		s.fail(fmt.Errorf("serve: frame from %v, which is not a client stream", m.Src))
		return
	}
	switch m.Grant {
	case grantAck:
		s.ack(id, uint64(m.Addr))
	case grantObservation:
		s.enqueue(entry{stream: id, addr: m.Addr,
			tup: coherence.Tuple{Sender: m.Requestor, Type: m.Type}})
	case grantQuery:
		s.enqueue(entry{stream: id, query: true, addr: m.Addr})
	default:
		s.fail(fmt.Errorf("serve: frame from %v with unknown discriminator %v", m.Src, m.Grant))
	}
}

// ack advances a stream's acknowledged cursor and prunes the retained
// response tail. An ack is a cumulative high-water mark ("I hold every
// response below n"), and after a crash it can legitimately run ahead
// of the recovered cursor: a client that verified responses the torn
// WAL lost knows more than the server's durable state does. The server
// prunes what it can and catches back up as the client re-sends the
// lost observations — so the ack clamps to applied rather than failing.
func (s *Server) ack(id int, n uint64) {
	st := s.streams[id]
	if n > st.applied {
		n = st.applied
	}
	if n <= st.acked {
		return // stale ack, already pruned past it
	}
	st.resp = st.resp[n-st.acked:]
	st.acked = n
}

// weight ranks queue entries for shedding: observations above queries,
// then stream priority. Lowest weight sheds first. Validate bounds
// priorities to [0, maxPriority), so the offset keeps every
// observation above every query.
func (s *Server) weight(e entry) int {
	w := s.streams[e.stream].priority
	if !e.query {
		w += maxPriority
	}
	return w
}

// enqueue admits work to the bounded queue, shedding deterministically
// on overflow: the lowest-weight entry goes, and among equal weights
// the newest arrival (largest idx) — so under sustained overload the
// oldest high-priority work still drains in order.
func (s *Server) enqueue(e entry) {
	s.arrivals++
	e.at, e.idx = s.eng.Now(), s.arrivals
	st := s.streams[e.stream]
	if !e.query && st.lagging {
		s.stats.Dropped[e.stream]++
		return
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		// Find the shed victim among the queued entries.
		victim := -1
		for i, q := range s.queue {
			if victim < 0 || s.weight(q) < s.weight(s.queue[victim]) ||
				(s.weight(q) == s.weight(s.queue[victim]) && q.idx > s.queue[victim].idx) {
				victim = i
			}
		}
		if s.weight(e) <= s.weight(s.queue[victim]) {
			s.shed(e) // the newcomer is the cheapest to lose
			return
		}
		s.shed(s.queue[victim])
		s.queue = append(s.queue[:victim], s.queue[victim+1:]...)
	}
	s.queue = append(s.queue, e)
	if len(s.queue) > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = len(s.queue)
	}
	s.armWatchdog()
	s.kick()
}

// shed records the loss of an entry. A shed observation breaks its
// stream's contiguity at its arrival index, so the stream goes lagging
// until resync; observations queued before the victim still apply.
func (s *Server) shed(e entry) {
	s.stats.Shed[e.stream]++
	if e.query {
		s.stats.ShedQueries++
		return
	}
	breakContiguity(s.streams[e.stream], e.idx)
}

// kick starts the worker if there is work and it is idle.
func (s *Server) kick() {
	if s.busy || s.stalled || s.failure != nil || len(s.queue) == 0 {
		return
	}
	s.busy = true
	s.eng.After(s.cfg.ProcessNs, s.processEv)
}

// process serves the queue head.
func (s *Server) process() {
	s.busy = false
	if s.failure != nil || s.stalled || len(s.queue) == 0 {
		return
	}
	e := s.queue[0]
	s.queue = s.queue[1:]
	if s.cfg.DeadlineNs > 0 && s.eng.Now()-e.at > s.cfg.DeadlineNs {
		s.stats.TimedOut[e.stream]++
		if e.query {
			// Answer with a distinct timeout frame rather than silence,
			// so the client can tell a timed-out query from a lost one.
			s.tr.Send(queryTimeoutMsg(s.cfg.Node, coherence.NodeID(e.stream), e.addr))
		} else {
			breakContiguity(s.streams[e.stream], e.idx)
		}
	} else if e.query {
		st := s.streams[e.stream]
		pred, ok := st.pred.Predict(e.addr)
		s.stats.Queries++
		s.tr.Send(queryRespMsg(s.cfg.Node, coherence.NodeID(e.stream), e.addr, Response{Pred: pred, OK: ok}))
	} else if st := s.streams[e.stream]; st.lagging && e.idx > st.breakIdx {
		// Queued behind the hole a shed or timeout left: the entry itself
		// may still be fresh, but applying observation n+1 after
		// observation n was lost would advance the cursor over the hole.
		// (Entries that arrived before the hole apply normally — the
		// prefix up to the break stays contiguous.)
		s.stats.Dropped[e.stream]++
	} else {
		st := s.streams[e.stream]
		// Write-ahead, then apply, then respond — all within this event,
		// so the durable log never lags the in-memory state by more than
		// the unsynced tail.
		if err := s.wal.Append(uint16(e.stream), e.addr, e.tup); err != nil {
			s.fail(err)
			return
		}
		s.sinceSync++
		if s.sinceSync >= walSyncEvery {
			if err := s.wal.Sync(); err != nil {
				s.fail(err)
				return
			}
			s.sinceSync = 0
		}
		seq := st.applied
		r := s.applyObservation(st, e.addr, e.tup)
		s.tr.Send(responseMsg(s.cfg.Node, coherence.NodeID(e.stream), coherence.Addr(seq), r))
		s.sinceSnap++
		if s.cfg.SnapshotEvery > 0 && s.sinceSnap >= s.cfg.SnapshotEvery {
			if err := s.checkpoint(); err != nil {
				s.fail(err)
				return
			}
		}
	}
	s.processed++
	s.kick()
}

// armWatchdog schedules a stall check if one is not already pending.
// The watchdog disarms itself when the queue drains, so it never keeps
// the engine alive after the work is done.
func (s *Server) armWatchdog() {
	if s.cfg.WatchdogNs == 0 || s.watchdogArmed {
		return
	}
	s.watchdogArmed = true
	s.lastProgress = s.processed
	s.eng.After(s.cfg.WatchdogNs, s.watchdogEv)
}

func (s *Server) watchdog() {
	s.watchdogArmed = false
	if s.failure != nil || len(s.queue) == 0 {
		return
	}
	if s.processed == s.lastProgress {
		s.fail(fmt.Errorf("serve: no progress for %v with %d entries queued\n%s",
			s.cfg.WatchdogNs, len(s.queue), s.diagnose()))
		return
	}
	s.armWatchdog()
}

// diagnose renders the server's state for a failure report, the
// internal/machine idiom: enough to see at a glance which stream or
// queue entry is stuck.
func (s *Server) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve diagnostic at t=%v: queue=%d/%d processed=%d arrivals=%d checkpoints=%d\n",
		s.eng.Now(), len(s.queue), s.cfg.MaxQueue, s.processed, s.arrivals, s.stats.Checkpoints)
	for i, st := range s.streams {
		fmt.Fprintf(&b, "  stream %d: applied=%d acked=%d retained=%d lagging=%v shed=%d timedout=%d dropped=%d prio=%d\n",
			i, st.applied, st.acked, len(st.resp), st.lagging,
			s.stats.Shed[i], s.stats.TimedOut[i], s.stats.Dropped[i], st.priority)
	}
	if len(s.queue) > 0 {
		h := s.queue[0]
		fmt.Fprintf(&b, "  head: stream=%d query=%v addr=%#x queued at t=%v (%v ago)",
			h.stream, h.query, uint64(h.addr), h.at, s.eng.Now()-h.at)
	}
	return b.String()
}

// fail records the terminal failure exactly once.
func (s *Server) fail(err error) {
	if s.failure != nil {
		return
	}
	s.failure = err
	if s.onFailure != nil {
		s.onFailure(err)
	}
}
