package serve

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
)

func walRecords(n int) []WALRecord {
	recs := make([]WALRecord, n)
	for i := range recs {
		recs[i] = WALRecord{
			Stream: i % 2,
			Addr:   coherence.Addr((i % 8) * 64),
			Tup: coherence.Tuple{
				Sender: coherence.NodeID(i % 16),
				Type:   coherence.MsgType(1 + i%int(coherence.NumMsgTypes-1)),
			},
		}
	}
	return recs
}

func writeWAL(t *testing.T, path string, base [32]byte, recs []WALRecord, syncAfter int) *WAL {
	t.Helper()
	w, err := CreateWAL(path, base)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if err := w.Append(uint16(r.Stream), r.Addr, r.Tup); err != nil {
			t.Fatal(err)
		}
		if i+1 == syncAfter {
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return w
}

func TestWALAppendReplay(t *testing.T) {
	base := [32]byte{1, 2, 3}
	path := filepath.Join(t.TempDir(), "wal")
	recs := walRecords(50)
	w := writeWAL(t, path, base, recs, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []WALRecord
	n, torn, err := ReplayWAL(path, base, func(r WALRecord) error {
		got = append(got, r)
		return nil
	})
	if err != nil || torn != 0 || n != len(recs) {
		t.Fatalf("replay = %d records, %d torn bytes, %v", n, torn, err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d replayed as %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestWALTornTailTolerated chops the file at every byte boundary in
// the tail region: each chop must replay the intact prefix silently.
func TestWALTornTailTolerated(t *testing.T) {
	base := [32]byte{9}
	dir := t.TempDir()
	recs := walRecords(10)
	for cut := 0; cut <= 2*walRecordSize; cut++ {
		path := filepath.Join(dir, "wal")
		w := writeWAL(t, path, base, recs, len(recs))
		w.Close()
		full := walHeaderSize + int64(len(recs))*walRecordSize
		if err := os.Truncate(path, full-int64(cut)); err != nil {
			t.Fatal(err)
		}
		n, torn, err := ReplayWAL(path, base, func(WALRecord) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantFull := (int(full) - cut - walHeaderSize) / walRecordSize
		wantTorn := (int(full) - cut - walHeaderSize) % walRecordSize
		if n != wantFull || torn != wantTorn {
			t.Fatalf("cut %d: replayed %d records with %d torn bytes, want %d and %d",
				cut, n, torn, wantFull, wantTorn)
		}
	}
}

// TestWALCorruptionIsLoud: damage that cannot be a torn tail fails
// with ErrWALCorrupt instead of silently dropping records.
func TestWALCorruptionIsLoud(t *testing.T) {
	base := [32]byte{7}
	path := filepath.Join(t.TempDir(), "wal")
	recs := walRecords(10)
	w := writeWAL(t, path, base, recs, len(recs))
	w.Close()
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mut []byte, wantText string) {
		t.Helper()
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReplayWAL(path, base, func(WALRecord) error { return nil })
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("%s: %v, want ErrWALCorrupt", name, err)
		}
		if wantText != "" && !strings.Contains(err.Error(), wantText) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantText)
		}
	}

	mid := append([]byte(nil), pristine...)
	mid[walHeaderSize+3*walRecordSize+4] ^= 0x01 // third record, mid-file
	check("mid-file bit flip", mid, "intact bytes after it")

	mag := append([]byte(nil), pristine...)
	mag[0] = 'X'
	check("bad magic", mag, "magic")

	ver := append([]byte(nil), pristine...)
	ver[4] = walVersion + 1
	check("future version", ver, "version")

	// A log bound to a different snapshot: mispaired generation.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayWAL(path, [32]byte{8}, func(WALRecord) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) || !strings.Contains(err.Error(), "mispaired") {
		t.Fatalf("wrong base digest: %v, want mispaired-generation ErrWALCorrupt", err)
	}
}

// TestWALSyncBoundary pins the durability bookkeeping the crash
// harness relies on: SyncedSize tracks the fsynced prefix, Size the
// written length.
func TestWALSyncBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w := writeWAL(t, path, [32]byte{}, walRecords(10), 6)
	defer w.Close()
	if w.SyncedSize() != walHeaderSize+6*walRecordSize {
		t.Fatalf("SyncedSize = %d, want header+6 records", w.SyncedSize())
	}
	if w.Size() != walHeaderSize+10*walRecordSize {
		t.Fatalf("Size = %d, want header+10 records", w.Size())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.SyncedSize() != w.Size() {
		t.Fatal("Sync did not advance the durable boundary")
	}
}
