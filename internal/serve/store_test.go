package serve

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestStoreCheckpointRecover(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Recover()
	if err != nil || !fresh.Fresh {
		t.Fatalf("empty store recover = %+v, %v; want Fresh", fresh, err)
	}

	st := sampleState(t, 2)
	d, w, err := s.Checkpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	// Log a few observations on top of the snapshot.
	recs := walRecords(5)
	for _, r := range recs {
		if err := w.Append(uint16(r.Stream), r.Addr, r.Tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fresh || rec.BaseDigest != d {
		t.Fatalf("recovered digest %x, want %x", rec.BaseDigest[:4], d[:4])
	}
	if !reflect.DeepEqual(rec.Base, st) {
		t.Fatal("recovered base state differs from the checkpointed state")
	}
	if len(rec.Records) != len(recs) {
		t.Fatalf("recovered %d WAL records, want %d", len(rec.Records), len(recs))
	}
	for i := range recs {
		if rec.Records[i] != recs[i] {
			t.Fatalf("record %d recovered as %+v, want %+v", i, rec.Records[i], recs[i])
		}
	}
}

// TestStoreContentAddressSelfCheck: a snapshot whose bytes no longer
// hash to their own file name is corruption, reported loudly.
func TestStoreContentAddressSelfCheck(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, w, err := s.Checkpoint(sampleState(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := s.snapPath(d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Recover()
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "content address") {
		t.Fatalf("corrupted snapshot recover: %v, want content-address ErrCorrupt", err)
	}
}

// TestStoreGCKeepsOnlyCurrent: superseded generations are collected
// once CURRENT moves on, so the store's footprint stays bounded.
func TestStoreGCKeepsOnlyCurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, w1, err := s.Checkpoint(sampleState(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	w1.Close()
	d2, w2, err := s.Checkpoint(sampleState(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{"CURRENT", filepath.Base(s.snapPath(d2)), filepath.Base(s.walPath(d2))}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("store holds %v, want %v", names, want)
	}
}
