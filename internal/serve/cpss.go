package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
)

// CPSS — Cosmos Predictor State Snapshot — is the versioned container
// that makes the whole service state one durable artifact. It wraps
// the per-stream canonical predictor snapshots (internal/core) with
// the service-level cursors and the unacknowledged response tail, and
// seals everything with the CTRC v2 footer idiom: trailing payload
// length plus CRC-32C (Castagnoli). Each failure mode is loud and
// distinct — ErrTruncated, ErrCorrupt, and ErrVersion never masquerade
// as one another, so an operator (and the chaos self-check) can tell a
// torn write from bit rot from a stale build.
//
// Layout (little-endian):
//
//	magic "CPSS" | version u16 | streamCount u32 |
//	per stream:
//	  applied u64 | acked u64 |
//	  respCount u32 (must equal applied-acked) |
//	  per response: sender u16 | type u8 | ok u8 |
//	  snapLen u32 | canonical core snapshot bytes
//	footer: bytesBeforeFooter u64 | crc32c(bytesBeforeFooter) u32
//
// Like the trace codec, the decoder never sizes an allocation from an
// untrusted count: every count is bounded against the bytes that
// remain before the corresponding make.

// cpssVersion is the current container version. Bump on any layout
// change; old files then fail with ErrVersion, not garbage decodes.
const cpssVersion = 1

var cpssMagic = [4]byte{'C', 'P', 'S', 'S'}

// cpssCRCTable is the Castagnoli polynomial table (hardware-assisted
// on modern CPUs), matching the CTRC trace codec.
var cpssCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Distinct CPSS failure classes. Decode errors wrap exactly one of
// these; match with errors.Is.
var (
	// ErrTruncated means the file ends before its own footer says it
	// should — a torn or partial write.
	ErrTruncated = errors.New("serve: cpss: truncated")
	// ErrCorrupt means the bytes are complete but wrong — checksum
	// mismatch, bad magic, or a structurally impossible payload.
	ErrCorrupt = errors.New("serve: cpss: corrupt")
	// ErrVersion means a well-formed container written by a different
	// CPSS version.
	ErrVersion = errors.New("serve: cpss: version mismatch")
)

// StreamState is one stream's durable state inside a CPSS container.
type StreamState struct {
	// Applied counts observations applied to the predictor since the
	// stream began: the stream's durable cursor.
	Applied uint64
	// Acked counts responses the client has confirmed receiving.
	Acked uint64
	// Resp is the retained response tail for sequences [Acked, Applied),
	// kept so a resynchronizing client can be re-sent everything it may
	// have missed.
	Resp []Response
	// Snap is the predictor's canonical snapshot (core.Snapshot).
	Snap []byte
}

// State is the full durable service state: one entry per stream, dense
// by stream id.
type State struct {
	Streams []StreamState
}

// EncodeCPSS serializes the state into a self-validating container.
func EncodeCPSS(st State) []byte {
	buf := append([]byte(nil), cpssMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, cpssVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Streams)))
	for i := range st.Streams {
		s := &st.Streams[i]
		buf = binary.LittleEndian.AppendUint64(buf, s.Applied)
		buf = binary.LittleEndian.AppendUint64(buf, s.Acked)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Resp)))
		for _, r := range s.Resp {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(r.Pred.Sender))
			buf = append(buf, byte(r.Pred.Type))
			if r.OK {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Snap)))
		buf = append(buf, s.Snap...)
	}
	return appendFooter(buf)
}

// appendFooter seals a payload with the CTRC v2 footer: trailing
// payload length plus CRC-32C.
func appendFooter(body []byte) []byte {
	body = binary.LittleEndian.AppendUint64(body, uint64(len(body)))
	return binary.LittleEndian.AppendUint32(body, crc32.Checksum(body[:len(body)-8], cpssCRCTable))
}

// Digest returns the content address of an encoded container.
func Digest(encoded []byte) [sha256.Size]byte { return sha256.Sum256(encoded) }

const cpssFooterSize = 8 + 4

// DecodeCPSS validates and decodes a container. The returned error
// wraps ErrTruncated, ErrCorrupt, or ErrVersion.
func DecodeCPSS(data []byte) (State, error) {
	if len(data) < len(cpssMagic)+2+4+cpssFooterSize {
		return State{}, fmt.Errorf("%w: %d bytes is smaller than an empty container", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != cpssMagic {
		return State{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	// Footer first: length pins truncation, checksum pins corruption.
	body := data[:len(data)-cpssFooterSize]
	wantLen := binary.LittleEndian.Uint64(data[len(data)-cpssFooterSize:])
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if wantLen != uint64(len(body)) {
		if wantLen > uint64(len(body)) {
			return State{}, fmt.Errorf("%w: footer says %d payload bytes, file holds %d", ErrTruncated, wantLen, len(body))
		}
		return State{}, fmt.Errorf("%w: footer says %d payload bytes, file holds %d", ErrCorrupt, wantLen, len(body))
	}
	if got := crc32.Checksum(body, cpssCRCTable); got != wantCRC {
		return State{}, fmt.Errorf("%w: checksum %#x, footer says %#x", ErrCorrupt, got, wantCRC)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != cpssVersion {
		return State{}, fmt.Errorf("%w: container version %d, this build reads %d", ErrVersion, v, cpssVersion)
	}

	nStreams := binary.LittleEndian.Uint32(data[6:])
	off := 10
	// Each declared stream costs at least its fixed header.
	if uint64(nStreams)*(8+8+4+4) > uint64(len(body)-off) {
		return State{}, fmt.Errorf("%w: stream count %d exceeds the %d remaining bytes", ErrCorrupt, nStreams, len(body)-off)
	}
	st := State{Streams: make([]StreamState, 0, nStreams)}
	for i := uint32(0); i < nStreams; i++ {
		if len(body)-off < 8+8+4 {
			return State{}, fmt.Errorf("%w: truncated payload at stream %d header", ErrCorrupt, i)
		}
		s := StreamState{
			Applied: binary.LittleEndian.Uint64(body[off:]),
			Acked:   binary.LittleEndian.Uint64(body[off+8:]),
		}
		nResp := binary.LittleEndian.Uint32(body[off+16:])
		off += 20
		if s.Acked > s.Applied {
			return State{}, fmt.Errorf("%w: stream %d acked %d beyond applied %d", ErrCorrupt, i, s.Acked, s.Applied)
		}
		if uint64(nResp) != s.Applied-s.Acked {
			return State{}, fmt.Errorf("%w: stream %d holds %d responses for cursor span [%d,%d)",
				ErrCorrupt, i, nResp, s.Acked, s.Applied)
		}
		if uint64(nResp)*4 > uint64(len(body)-off) {
			return State{}, fmt.Errorf("%w: stream %d response count %d exceeds the %d remaining bytes",
				ErrCorrupt, i, nResp, len(body)-off)
		}
		s.Resp = make([]Response, 0, nResp)
		for j := uint32(0); j < nResp; j++ {
			r := Response{
				Pred: coherence.Tuple{
					Sender: coherence.NodeID(int16(binary.LittleEndian.Uint16(body[off:]))),
					Type:   coherence.MsgType(body[off+2]),
				},
			}
			switch body[off+3] {
			case 1:
				r.OK = true
			case 0:
				if r.Pred != (coherence.Tuple{}) {
					return State{}, fmt.Errorf("%w: stream %d response %d: non-empty tuple without a prediction", ErrCorrupt, i, j)
				}
			default:
				return State{}, fmt.Errorf("%w: stream %d response %d: ok byte %d", ErrCorrupt, i, j, body[off+3])
			}
			off += 4
			if r.OK && (!r.Pred.Type.Valid() || r.Pred.Sender < 0 || r.Pred.Sender >= 1<<12) {
				return State{}, fmt.Errorf("%w: stream %d response %d: invalid prediction %v", ErrCorrupt, i, j, r.Pred)
			}
			s.Resp = append(s.Resp, r)
		}
		if len(body)-off < 4 {
			return State{}, fmt.Errorf("%w: truncated payload at stream %d snapshot length", ErrCorrupt, i)
		}
		snapLen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		if uint64(snapLen) > uint64(len(body)-off) {
			return State{}, fmt.Errorf("%w: stream %d snapshot of %d bytes exceeds the %d remaining",
				ErrCorrupt, i, snapLen, len(body)-off)
		}
		s.Snap = append([]byte(nil), body[off:off+int(snapLen)]...)
		off += int(snapLen)
		st.Streams = append(st.Streams, s)
	}
	if off != len(body) {
		return State{}, fmt.Errorf("%w: %d trailing payload bytes after %d streams", ErrCorrupt, len(body)-off, nStreams)
	}
	return st, nil
}
