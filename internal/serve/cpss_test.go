package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
	"github.com/cosmos-coherence/cosmos/internal/core"
)

// sampleState builds a plausible service state: driven predictors,
// cursors, and response tails consistent with them.
func sampleState(t *testing.T, streams int) State {
	t.Helper()
	r := rand.New(rand.NewSource(41))
	st := State{Streams: make([]StreamState, streams)}
	for i := range st.Streams {
		p, err := core.New(core.Config{Depth: 2, FilterMax: 1})
		if err != nil {
			t.Fatal(err)
		}
		var resp []Response
		for j := 0; j < 200+50*i; j++ {
			addr := coherence.Addr(r.Intn(8) * 64)
			p.Observe(addr, coherence.Tuple{
				Sender: coherence.NodeID(r.Intn(16)),
				Type:   coherence.MsgType(1 + r.Intn(int(coherence.NumMsgTypes)-1)),
			})
			pred, ok := p.Predict(addr)
			resp = append(resp, Response{Pred: pred, OK: ok})
		}
		applied := uint64(len(resp))
		acked := applied - uint64(3+i)
		st.Streams[i] = StreamState{
			Applied: applied,
			Acked:   acked,
			Resp:    append([]Response(nil), resp[acked:]...),
			Snap:    p.Snapshot(),
		}
	}
	return st
}

func TestCPSSRoundTrip(t *testing.T) {
	st := sampleState(t, 3)
	enc := EncodeCPSS(st)
	got, err := DecodeCPSS(enc)
	if err != nil {
		t.Fatalf("DecodeCPSS: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("round trip changed the state")
	}
	// Content addressing: the same logical state encodes identically.
	if Digest(enc) != Digest(EncodeCPSS(st)) {
		t.Fatal("re-encoding the same state yields a different digest")
	}

	// Empty state round-trips too.
	empty := State{Streams: []StreamState{}}
	got, err = DecodeCPSS(EncodeCPSS(empty))
	if err != nil || len(got.Streams) != 0 {
		t.Fatalf("empty round trip = %+v, %v", got, err)
	}
}

// refitFooter recomputes the footer after a deliberate payload edit,
// isolating the specific validation under test from the checksum.
func refitFooter(enc []byte) []byte {
	body := enc[:len(enc)-cpssFooterSize]
	out := append([]byte(nil), body...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, cpssCRCTable))
}

// TestCPSSDistinctErrors pins the loud-and-distinct contract: the
// three failure classes are told apart by errors.Is.
func TestCPSSDistinctErrors(t *testing.T) {
	enc := EncodeCPSS(sampleState(t, 2))

	// Version mismatch: a well-formed container from a future build.
	future := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint16(future[4:], cpssVersion+1)
	future = refitFooter(future)
	if _, err := DecodeCPSS(future); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v, want ErrVersion", err)
	}

	// Truncation: payload bytes missing, footer intact.
	torn := append([]byte(nil), enc[:len(enc)-cpssFooterSize-5]...)
	torn = append(torn, enc[len(enc)-cpssFooterSize:]...)
	if _, err := DecodeCPSS(torn); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated payload: %v, want ErrTruncated", err)
	}
	if _, err := DecodeCPSS(enc[:8]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("stub file: %v, want ErrTruncated", err)
	}

	// Corruption: a flipped payload bit.
	flip := append([]byte(nil), enc...)
	flip[10] ^= 0x04
	if _, err := DecodeCPSS(flip); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v, want ErrCorrupt", err)
	}
	// Corruption: wrong magic.
	mag := append([]byte(nil), enc...)
	mag[0] = 'X'
	if _, err := DecodeCPSS(mag); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v, want ErrCorrupt", err)
	}
	// The classes never overlap.
	for name, data := range map[string][]byte{"future": future, "torn": torn, "flip": flip} {
		_, err := DecodeCPSS(data)
		n := 0
		for _, cls := range []error{ErrTruncated, ErrCorrupt, ErrVersion} {
			if errors.Is(err, cls) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: error %v matches %d classes, want exactly 1", name, err, n)
		}
	}
}

// TestCPSSNeverPanics chops and flips everywhere: every damaged input
// must return an error (or, for flips that land in stored values,
// decode) without panicking or over-allocating.
func TestCPSSNeverPanics(t *testing.T) {
	enc := EncodeCPSS(sampleState(t, 2))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCPSS(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
		}
	}
	rejected := 0
	for i := range enc {
		mut := bytes.Clone(enc)
		mut[i] ^= 0x10
		if _, err := DecodeCPSS(mut); err != nil {
			rejected++
		}
	}
	// The checksum covers every payload byte, so only flips inside the
	// footer's own length field can possibly slip through — and those
	// fail the length check. Everything must be rejected.
	if rejected != len(enc) {
		t.Fatalf("%d of %d bit flips rejected, want all", rejected, len(enc))
	}
}
