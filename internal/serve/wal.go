package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
)

// The write-ahead log makes every applied observation durable between
// snapshots. Each WAL generation is bound to the snapshot it extends:
// the header carries the base snapshot's content digest, so replaying
// a log against the wrong snapshot — a mispaired CURRENT, a stale
// file — is a loud error instead of silent predictor divergence.
//
// Records are fixed-size and individually checksummed:
//
//	header: magic "CWAL" | version u16 | base snapshot digest [32]byte
//	record: stream u16 | addr u64 | sender u16 | type u8 | crc32c u32
//
// Replay distinguishes the two ways a log goes bad. A damaged record
// in the tail region — the final record slot, whether short or
// complete-but-bad-checksum, plus any sub-record remainder after it —
// is a torn write: the crash interrupted an append, the record was
// never acknowledged as applied, and replay tolerates it by stopping
// there. A damaged record with at least one full record after it
// cannot be a torn tail; that is corruption and replay fails loudly.

const (
	walVersion    = 1
	walHeaderSize = 4 + 2 + 32
	walRecordSize = 2 + 8 + 2 + 1 + 4
)

var walMagic = [4]byte{'C', 'W', 'A', 'L'}

// ErrWALCorrupt marks mid-file WAL damage (as opposed to a tolerated
// torn tail). Match with errors.Is.
var ErrWALCorrupt = errors.New("serve: wal: corrupt")

// WAL is an append-only observation log. Appends buffer in the OS; the
// durable prefix is everything up to the last Sync. SyncedSize and
// Size expose the boundary so the crash harness can tear the unsynced
// tail at an arbitrary byte, the way a real power cut would.
type WAL struct {
	f      *os.File
	path   string
	size   int64
	synced int64
}

// CreateWAL creates (truncating any previous file) a new WAL
// generation bound to the snapshot with the given digest, fsyncing the
// header so the generation exists durably before it is referenced.
func CreateWAL(path string, base [32]byte) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: wal: create %s: %w", path, err)
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, walVersion)
	hdr = append(hdr, base[:]...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: wal: sync header: %w", err)
	}
	return &WAL{f: f, path: path, size: walHeaderSize, synced: walHeaderSize}, nil
}

// appendRecord encodes one observation record.
func appendRecord(buf []byte, stream uint16, addr coherence.Addr, tup coherence.Tuple) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint16(buf, stream)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(addr))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(tup.Sender))
	buf = append(buf, byte(tup.Type))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], cpssCRCTable))
}

// Append logs one observation. The record is handed to the OS but not
// fsynced; call Sync to move the durable boundary.
func (w *WAL) Append(stream uint16, addr coherence.Addr, tup coherence.Tuple) error {
	rec := appendRecord(make([]byte, 0, walRecordSize), stream, addr, tup)
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("serve: wal: append: %w", err)
	}
	w.size += walRecordSize
	return nil
}

// Sync makes every appended record durable.
func (w *WAL) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal: sync: %w", err)
	}
	w.synced = w.size
	return nil
}

// Close closes the underlying file without syncing (matching crash
// semantics: unsynced appends may be lost).
func (w *WAL) Close() error { return w.f.Close() }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the written length; SyncedSize the durable prefix.
func (w *WAL) Size() int64       { return w.size }
func (w *WAL) SyncedSize() int64 { return w.synced }

// WALRecord is one replayed observation.
type WALRecord struct {
	Stream int
	Addr   coherence.Addr
	Tup    coherence.Tuple
}

// ReplayWAL reads the log at path, verifies it extends the snapshot
// with digest base, and calls apply for each intact record in order.
// It returns the number of records applied and how many torn tail
// bytes were tolerated. Damage anywhere but the tail wraps
// ErrWALCorrupt.
func ReplayWAL(path string, base [32]byte, apply func(WALRecord) error) (applied int, tornBytes int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("serve: wal: read %s: %w", path, err)
	}
	if len(data) < walHeaderSize {
		return 0, 0, fmt.Errorf("%w: %s: %d bytes is shorter than the header", ErrWALCorrupt, path, len(data))
	}
	if [4]byte(data[:4]) != walMagic {
		return 0, 0, fmt.Errorf("%w: %s: bad magic %q", ErrWALCorrupt, path, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != walVersion {
		return 0, 0, fmt.Errorf("%w: %s: log version %d, this build reads %d", ErrWALCorrupt, path, v, walVersion)
	}
	if got := [32]byte(data[6:38]); got != base {
		return 0, 0, fmt.Errorf("%w: %s: log extends snapshot %x, expected %x — mispaired generation",
			ErrWALCorrupt, path, got[:4], base[:4])
	}
	off := walHeaderSize
	for len(data)-off >= walRecordSize {
		rec := data[off : off+walRecordSize]
		body := rec[:walRecordSize-4]
		want := binary.LittleEndian.Uint32(rec[walRecordSize-4:])
		if crc32.Checksum(body, cpssCRCTable) != want {
			rem := len(data) - off - walRecordSize
			if rem < walRecordSize {
				// Tail region: a torn final append, possibly followed by a
				// sub-record shred of the same interrupted write burst.
				return applied, len(data) - off, nil
			}
			return applied, 0, fmt.Errorf("%w: %s: record %d fails its checksum with %d intact bytes after it",
				ErrWALCorrupt, path, applied, rem)
		}
		r := WALRecord{
			Stream: int(binary.LittleEndian.Uint16(body)),
			Addr:   coherence.Addr(binary.LittleEndian.Uint64(body[2:])),
			Tup: coherence.Tuple{
				Sender: coherence.NodeID(int16(binary.LittleEndian.Uint16(body[10:]))),
				Type:   coherence.MsgType(body[12]),
			},
		}
		if !r.Tup.Type.Valid() || r.Tup.Sender < 0 || r.Tup.Sender >= 1<<12 {
			return applied, 0, fmt.Errorf("%w: %s: record %d decodes to invalid tuple %v",
				ErrWALCorrupt, path, applied, r.Tup)
		}
		if err := apply(r); err != nil {
			return applied, 0, err
		}
		applied++
		off += walRecordSize
	}
	return applied, len(data) - off, nil
}
