package serve

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
	"github.com/cosmos-coherence/cosmos/internal/core"
	"github.com/cosmos-coherence/cosmos/internal/faults"
	"github.com/cosmos-coherence/cosmos/internal/network"
	"github.com/cosmos-coherence/cosmos/internal/reliable"
	"github.com/cosmos-coherence/cosmos/internal/sim"
)

var testPredictor = core.Config{Depth: 2, FilterMax: 1}

// assertMatchesOracle checks every client's verified response log and
// the server's final predictor bytes against the transport-free
// oracle.
func assertMatchesOracle(t *testing.T, c *Cluster, workload [][]Obs) {
	t.Helper()
	for i, obs := range workload {
		wantResp, wantSnap, err := Oracle(testPredictor, obs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c.Clients[i].Recv, wantResp) {
			t.Fatalf("stream %d: response log diverges from oracle", i)
		}
		if got := c.Srv.PredictorSnapshot(i); !bytes.Equal(got, wantSnap) {
			t.Fatalf("stream %d: predictor state (%d bytes) differs from oracle (%d bytes)",
				i, len(got), len(wantSnap))
		}
	}
}

// TestServeMatchesOracle: an uninterrupted run over a faulty wire
// produces exactly the oracle's responses and predictor state.
func TestServeMatchesOracle(t *testing.T) {
	workload := GenWorkload(1, 3, 300)
	c, err := NewCluster(HarnessConfig{
		Dir:    t.TempDir(),
		Server: Config{Predictor: testPredictor, SnapshotEvery: 64},
		Plan:   faults.Plan{Seed: 5, DropProb: 0.02, DupProb: 0.02, JitterNs: 150},
	}, workload)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, c, workload)
	if st := c.Srv.Stats(); st.Applied != 900 || st.Checkpoints == 0 {
		t.Fatalf("stats = %+v, want 900 applied and periodic checkpoints", st)
	}
}

// TestKillRestoreByteEquivalence is the tentpole acceptance test: kill
// the server at a seeded instant, tear the unsynced WAL tail at a
// seeded byte, restore, resync, run to completion — and the service
// must be indistinguishable from one that never crashed: byte-equal
// predictor state and byte-equal response streams, with regenerated
// responses verified against what clients already held.
func TestKillRestoreByteEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		workload := GenWorkload(seed, 2+r.Intn(3), 250)
		c, err := NewCluster(HarnessConfig{
			Dir: t.TempDir(),
			Server: Config{Predictor: testPredictor,
				SnapshotEvery: 32 + r.Intn(64)},
			Plan: faults.Plan{Seed: uint64(seed), DropProb: 0.01, JitterNs: 100},
		}, workload)
		if err != nil {
			t.Fatal(err)
		}
		kills := 1 + r.Intn(3)
		for k := 0; k < kills; k++ {
			killAt := c.Eng.Now() + sim.Time(2_000+r.Intn(20_000))
			if err := c.Kill(killAt, r.Float64()); err != nil {
				t.Fatalf("seed %d kill %d: %v", seed, k, err)
			}
			if err := c.Restart(); err != nil {
				t.Fatalf("seed %d restart %d: %v", seed, k, err)
			}
		}
		if err := c.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertMatchesOracle(t, c, workload)
	}
}

// TestRecoveredStateIsByteIdentical kills mid-run and compares the
// restored predictors directly against a parallel server that was fed
// the same durable prefix — state equivalence without finishing the
// workload.
func TestRecoveredStateIsByteIdentical(t *testing.T) {
	workload := GenWorkload(3, 2, 400)
	c, err := NewCluster(HarnessConfig{
		Dir:    t.TempDir(),
		Server: Config{Predictor: testPredictor, SnapshotEvery: 50},
	}, workload)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(30_000, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	for i := range workload {
		cursor := c.Srv.Cursor(i)
		// Feed exactly the durable prefix to a fresh predictor: the
		// restored predictor must hold identical bytes.
		p, err := core.New(testPredictor)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range workload[i][:cursor] {
			p.Observe(o.Addr, o.Tup)
		}
		if !bytes.Equal(c.Srv.PredictorSnapshot(i), p.Snapshot()) {
			t.Fatalf("stream %d: restored predictor differs from %d-observation oracle prefix", i, cursor)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, c, workload)
}

// rawHarness builds an engine/wire/transport/server stack without
// harness clients, for tests that drive crafted frames directly.
func rawHarness(t *testing.T, cfg Config, clients int) (*sim.Engine, *reliable.Transport, *Server) {
	t.Helper()
	simCfg := sim.DefaultConfig()
	simCfg.Nodes = clients + 1
	eng := &sim.Engine{}
	nw, err := network.New(eng, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := reliable.New(eng, nw, simCfg)
	for i := 0; i < clients; i++ {
		tr.Bind(coherence.NodeID(i), func(coherence.Msg) {})
	}
	cfg.Streams = clients
	cfg.Node = coherence.NodeID(clients)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, tr, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tr, srv
}

func sendObs(eng *sim.Engine, tr *reliable.Transport, at sim.Time, stream int, server coherence.NodeID, addr coherence.Addr) {
	eng.At(at, func() {
		tr.Send(obsMsg(coherence.NodeID(stream), server, addr,
			coherence.Tuple{Sender: 1, Type: coherence.GetROReq}))
	})
}

// TestBackpressureShedsDeterministically floods a tiny queue from
// three streams of descending priority and pins the shed contract:
// the queue never grows past its bound, the lowest-priority stream is
// shed first, queries shed before any observation, and the whole
// outcome is deterministic run to run.
func TestBackpressureShedsDeterministically(t *testing.T) {
	run := func() (Stats, error) {
		cfg := Config{Predictor: testPredictor, MaxQueue: 4,
			ProcessNs: 100_000, Priority: []int{2, 1, 0}}
		eng, tr, srv := rawHarness(t, cfg, 3)
		// 4 observations per stream, arriving interleaved long before
		// anything is processed: 12 arrivals into a queue of 4.
		for i := 0; i < 4; i++ {
			for s := 0; s < 3; s++ {
				sendObs(eng, tr, sim.Time(100*(3*i+s)+1), s, srv.cfg.Node, coherence.Addr(64*i))
			}
		}
		// A query from the highest-priority stream while the queue is
		// full of observations: it must be shed, not an observation.
		eng.At(2_000, func() { tr.Send(queryMsg(0, srv.cfg.Node, 0)) })
		if _, err := eng.Run(0); err != nil {
			return Stats{}, err
		}
		srv.Close()
		return srv.Stats(), srv.Err()
	}
	st, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxQueueDepth > 4 {
		t.Fatalf("queue reached %d, bound is 4", st.MaxQueueDepth)
	}
	if st.ShedQueries != 1 {
		t.Fatalf("ShedQueries = %d, want the full-queue query shed", st.ShedQueries)
	}
	// Stream 2 (lowest priority) bears the observation shedding;
	// stream 0 (highest) loses nothing but its query.
	if st.Shed[2] == 0 {
		t.Fatal("lowest-priority stream shed nothing under overload")
	}
	if st.Shed[0] != 1 || st.Dropped[0] != 0 {
		t.Fatalf("highest-priority stream shed=%d dropped=%d, want only its query shed",
			st.Shed[0], st.Dropped[0])
	}
	// A shed observation breaks contiguity: later arrivals drop.
	if st.Dropped[2] == 0 {
		t.Fatal("lagging stream dropped no follow-on observations")
	}
	// Determinism: an identical run sheds identically.
	st2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("two identical overload runs diverged:\n%+v\n%+v", st, st2)
	}
}

// TestShedThenResyncRecoversStream: a lagging stream is re-admitted by
// Resync and serves correctly from its durable cursor.
func TestShedThenResyncRecoversStream(t *testing.T) {
	cfg := Config{Predictor: testPredictor, MaxQueue: 1, ProcessNs: 10_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	for i := 0; i < 4; i++ {
		sendObs(eng, tr, sim.Time(100*(i+1)), 0, srv.cfg.Node, 0)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !srv.Lagging(0) {
		t.Fatal("overloaded stream did not go lagging")
	}
	applied := srv.Cursor(0)
	cursor, err := srv.Resync(0, applied)
	if err != nil || cursor != applied {
		t.Fatalf("Resync = %d, %v; want cursor %d", cursor, err, applied)
	}
	if srv.Lagging(0) {
		t.Fatal("Resync left the stream lagging")
	}
	sendObs(eng, tr, eng.Now()+100, 0, srv.cfg.Node, 64)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if srv.Cursor(0) != applied+1 {
		t.Fatalf("cursor %d after resynced observation, want %d", srv.Cursor(0), applied+1)
	}
}

// TestDeadlineTimesOutStaleWork: entries older than DeadlineNs are
// timed out rather than served stale.
func TestDeadlineTimesOutStaleWork(t *testing.T) {
	cfg := Config{Predictor: testPredictor, MaxQueue: 16,
		ProcessNs: 5_000, DeadlineNs: 6_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	// Four near-simultaneous observations: by the time the third would
	// be served (t≈15000) it has waited 3×ProcessNs > DeadlineNs.
	for i := 0; i < 4; i++ {
		sendObs(eng, tr, sim.Time(100+sim.Time(i)), 0, srv.cfg.Node, coherence.Addr(64*i))
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.TimedOut[0] == 0 {
		t.Fatalf("no entries timed out: %+v", st)
	}
	if st.Applied+st.TimedOut[0]+st.Dropped[0] != 4 {
		t.Fatalf("entries unaccounted for: %+v", st)
	}
}

// TestTimeoutDropsQueuedObservations: a queue-head timeout breaks its
// stream's contiguity, and same-stream observations that were already
// queued behind it — which arrived later and may reach the head still
// fresh — must be dropped, not applied: applying observation n+1 after
// observation n was lost would advance the cursor over a hole, and
// after a resync the client would resend from the wrong index.
func TestTimeoutDropsQueuedObservations(t *testing.T) {
	cfg := Config{Predictor: testPredictor, MaxQueue: 16,
		ProcessNs: 5_000, DeadlineNs: 12_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	// A burst of four: entries 0 and 1 are served within the deadline,
	// entry 2 times out at the head (waited ~15000 > 12000) and sets
	// lagging, entry 3 expires behind it.
	for i := 0; i < 4; i++ {
		sendObs(eng, tr, sim.Time(100+sim.Time(i)), 0, srv.cfg.Node, coherence.Addr(64*i))
	}
	// Entry 4 arrives late enough to still be fresh (~6000ns old) when
	// it reaches the head at t≈25000: without the lagging check it would
	// be applied over the hole entry 2 left.
	sendObs(eng, tr, 19_000, 0, srv.cfg.Node, coherence.Addr(256))
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !srv.Lagging(0) {
		t.Fatal("timed-out stream did not go lagging")
	}
	if st.Dropped[0] == 0 {
		t.Fatalf("fresh observation behind the timeout hole was not dropped: %+v", st)
	}
	if st.Applied+st.TimedOut[0]+st.Dropped[0] != 5 {
		t.Fatalf("entries unaccounted for: %+v", st)
	}
	// The cursor froze at the hole: only the pre-timeout prefix applied.
	if srv.Cursor(0) != 2 {
		t.Fatalf("cursor = %d after the contiguity break, want 2", srv.Cursor(0))
	}
}

// TestShedKeepsPreBreakObservations: a shed victim is always the
// stream's newest queued entry, so observations queued before it are
// still contiguous — they must apply after the break; only arrivals
// after the hole drop.
func TestShedKeepsPreBreakObservations(t *testing.T) {
	cfg := Config{Predictor: testPredictor, MaxQueue: 2, ProcessNs: 10_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	sendObs(eng, tr, 100, 0, srv.cfg.Node, 0)      // applies from the head
	sendObs(eng, tr, 200, 0, srv.cfg.Node, 64)     // queued before the break
	sendObs(eng, tr, 300, 0, srv.cfg.Node, 128)    // overflows: shed, the hole
	sendObs(eng, tr, 25_000, 0, srv.cfg.Node, 192) // post-break arrival: dropped
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if !srv.Lagging(0) {
		t.Fatal("shed stream did not go lagging")
	}
	if srv.Cursor(0) != 2 {
		t.Fatalf("cursor = %d, want 2: the observation queued before the break must still apply",
			srv.Cursor(0))
	}
	if st.Shed[0] != 1 || st.Dropped[0] != 1 {
		t.Fatalf("shed=%d dropped=%d, want 1 shed (the hole) and 1 drop (the post-break arrival)",
			st.Shed[0], st.Dropped[0])
	}
}

// TestTimedOutQueryAnswersWithTimeoutFrame: a query that waits past
// its deadline is answered with the dedicated timeout frame, not
// silence — a client must be able to tell a timed-out query from a
// lost one.
func TestTimedOutQueryAnswersWithTimeoutFrame(t *testing.T) {
	cfg := Config{Predictor: testPredictor, MaxQueue: 16,
		ProcessNs: 5_000, DeadlineNs: 6_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	var grants []coherence.MsgType
	tr.Bind(0, func(m coherence.Msg) { grants = append(grants, m.Grant) })
	// Three observations ahead of the query: by the time the query
	// reaches the head it has waited ~20000ns, far past the deadline.
	for i := 0; i < 3; i++ {
		sendObs(eng, tr, sim.Time(100+sim.Time(i)), 0, srv.cfg.Node, coherence.Addr(64*i))
	}
	eng.At(110, func() { tr.Send(queryMsg(0, srv.cfg.Node, 0)) })
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	var timeouts int
	for _, g := range grants {
		if g == grantQueryTimeout {
			timeouts++
		}
	}
	if timeouts != 1 {
		t.Fatalf("saw %d queryTimeout frames in %v, want exactly 1", timeouts, grants)
	}
	if r, isQuery := decodeResponse(queryTimeoutMsg(srv.cfg.Node, 0, 0)); !isQuery || r.OK {
		t.Fatalf("queryTimeout decodes as (%+v, %v), want a prediction-free query response", r, isQuery)
	}
}

// TestConfigRejectsOutOfRangePriority: priorities outside
// [0, maxPriority) would let a query outrank an observation in the
// shed ordering, so Validate must refuse them.
func TestConfigRejectsOutOfRangePriority(t *testing.T) {
	base := Config{Streams: 2, Node: 2, Predictor: testPredictor}
	for _, bad := range [][]int{{0, -1}, {maxPriority, 0}, {0, maxPriority + 7}} {
		cfg := base
		cfg.Priority = bad
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted Priority %v", bad)
		}
	}
	ok := base
	ok.Priority = []int{0, maxPriority - 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected in-range priorities: %v", err)
	}
}

// TestWatchdogReportsStall: a wedged worker fails the server with the
// diagnose dump instead of hanging.
func TestWatchdogReportsStall(t *testing.T) {
	cfg := Config{Predictor: testPredictor, WatchdogNs: 50_000}
	eng, tr, srv := rawHarness(t, cfg, 1)
	var cbErr error
	srv.OnFailure(func(err error) { cbErr = err })
	srv.stalled = true // the test hook: freeze the worker
	sendObs(eng, tr, 100, 0, srv.cfg.Node, 0)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	err := srv.Err()
	if err == nil || cbErr == nil {
		t.Fatalf("stalled server did not fail (err=%v cb=%v)", err, cbErr)
	}
	for _, want := range []string{"no progress", "serve diagnostic at t=", "stream 0:", "head:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("watchdog error missing %q:\n%v", want, err)
		}
	}
	// The watchdog must not keep a healthy drained server alive: a
	// fresh server that finishes its work lets the engine go quiet.
	eng2, tr2, srv2 := rawHarness(t, cfg, 1)
	sendObs(eng2, tr2, 100, 0, srv2.cfg.Node, 0)
	if _, err := eng2.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Err(); err != nil {
		t.Fatalf("healthy server tripped its watchdog: %v", err)
	}
}

// TestAckAheadOfRecoveredCursorClamps: after a crash loses WAL tail
// observations, a surviving client legitimately acks beyond the
// recovered cursor; the server must clamp and catch up, not fail.
// (Found by the chaos sweep: seed 96 of the first 100.)
func TestAckAheadOfRecoveredCursorClamps(t *testing.T) {
	cfg := Config{Predictor: testPredictor}
	eng, tr, srv := rawHarness(t, cfg, 1)
	sendObs(eng, tr, 100, 0, srv.cfg.Node, 0)
	sendObs(eng, tr, 200, 0, srv.cfg.Node, 64)
	eng.At(1_000, func() { tr.Send(ackMsg(0, srv.cfg.Node, 5)) })
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("ahead-of-cursor ack failed the server: %v", err)
	}
	if srv.Cursor(0) != 2 || len(srv.streams[0].resp) != 0 {
		t.Fatalf("cursor %d with %d retained responses; want 2 applied, tail fully pruned",
			srv.Cursor(0), len(srv.streams[0].resp))
	}
	// The next applied observation retains its response again (acked
	// was clamped to 2, not left at 5).
	sendObs(eng, tr, eng.Now()+100, 0, srv.cfg.Node, 128)
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(srv.streams[0].resp) != 1 {
		t.Fatalf("retained %d responses after a post-clamp observation, want 1", len(srv.streams[0].resp))
	}
}

// TestQueryAnswersWithoutObserving: queries read predictions without
// mutating predictor state.
func TestQueryAnswersWithoutObserving(t *testing.T) {
	cfg := Config{Predictor: testPredictor}
	eng, tr, srv := rawHarness(t, cfg, 1)
	var got []Response
	tr.Bind(0, func(m coherence.Msg) {
		r, isQuery := decodeResponse(m)
		if isQuery {
			got = append(got, r)
		}
	})
	// Three identical observations: with Depth 2 the third installs
	// the PHT entry for the now-current history, making 0 predictable.
	sendObs(eng, tr, 100, 0, srv.cfg.Node, 0)
	sendObs(eng, tr, 200, 0, srv.cfg.Node, 0)
	sendObs(eng, tr, 300, 0, srv.cfg.Node, 0)
	eng.At(1_000, func() { tr.Send(queryMsg(0, srv.cfg.Node, 0)) })
	eng.At(1_100, func() { tr.Send(queryMsg(0, srv.cfg.Node, 4096)) })
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	digestBefore := srv.StateDigest(0)
	if len(got) != 2 {
		t.Fatalf("received %d query responses, want 2", len(got))
	}
	if !got[0].OK {
		t.Fatal("query for a trained block returned no prediction")
	}
	if got[1].OK {
		t.Fatal("query for an untouched block returned a prediction")
	}
	if srv.StateDigest(0) != digestBefore || srv.Cursor(0) != 3 {
		t.Fatal("queries mutated predictor state")
	}
	if st := srv.Stats(); st.Queries != 2 {
		t.Fatalf("Queries = %d, want 2", st.Queries)
	}
}
