package analysis

import (
	"strings"
	"testing"
)

// TestLoadMissingPackage pins the error for a pattern that matches a
// directory with no Go package: `go list -e` exits 0 and reports the
// problem in the package's Error field, which Load must surface.
func TestLoadMissingPackage(t *testing.T) {
	_, err := Load([]string{"./this-directory-does-not-exist"})
	if err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
	if !strings.Contains(err.Error(), "analysis: loading") {
		t.Errorf("error = %q, want it to contain %q", err, "analysis: loading")
	}
}

// TestLoadGoListFailure drives the go-list-failed path: an argument
// the OS cannot even pass to the child process makes the command fail
// with empty stderr, exercising the err.Error() fallback too.
func TestLoadGoListFailure(t *testing.T) {
	_, err := Load([]string{"./\x00"})
	if err == nil {
		t.Fatal("Load with a NUL-byte pattern succeeded")
	}
	if !strings.Contains(err.Error(), "analysis: go list") {
		t.Errorf("error = %q, want it to contain %q", err, "analysis: go list")
	}
}

// TestBuildPackagesListedError pins that a target package carrying a
// go list load error aborts the build with that error.
func TestBuildPackagesListedError(t *testing.T) {
	listed := []*listedPackage{{
		ImportPath: "example.com/broken",
		Error:      &struct{ Err string }{Err: "no Go files"},
	}}
	_, err := buildPackages(listed)
	if err == nil || !strings.Contains(err.Error(), "analysis: loading example.com/broken") {
		t.Errorf("error = %v, want loading error for example.com/broken", err)
	}
}

// TestBuildPackagesDepOnlyErrorSkipped pins the vendored/dep-only
// tolerance: load errors on packages that are only dependencies (and
// dep-only packages themselves) are skipped, not fatal.
func TestBuildPackagesDepOnlyErrorSkipped(t *testing.T) {
	listed := []*listedPackage{{
		ImportPath: "example.com/vendored",
		DepOnly:    true,
		Error:      &struct{ Err string }{Err: "vendor inconsistency"},
	}}
	pkgs, err := buildPackages(listed)
	if err != nil {
		t.Fatalf("dep-only error was fatal: %v", err)
	}
	if len(pkgs) != 0 {
		t.Errorf("got %d packages from a dep-only listing, want 0", len(pkgs))
	}
}

// TestBuildPackagesMissingExportData withholds fmt's export data from
// a package that imports it; type-checking must fail with the lookup
// error rather than silently resolving from source or GOPATH.
func TestBuildPackagesMissingExportData(t *testing.T) {
	listed := []*listedPackage{{
		ImportPath: "example.com/importsfmt",
		Dir:        "testdata/src/importsfmt",
		Name:       "importsfmt",
		GoFiles:    []string{"importsfmt.go"},
	}}
	_, err := buildPackages(listed)
	if err == nil {
		t.Fatal("type-checking without fmt export data succeeded")
	}
	if !strings.Contains(err.Error(), "analysis: type-checking") ||
		!strings.Contains(err.Error(), "no export data") {
		t.Errorf("error = %q, want a type-checking error citing missing export data", err)
	}
}

// TestBuildPackagesParseError feeds buildPackages an unparseable file.
func TestBuildPackagesParseError(t *testing.T) {
	listed := []*listedPackage{{
		ImportPath: "example.com/badparse",
		Dir:        "testdata/src/badparse",
		Name:       "badparse",
		GoFiles:    []string{"badparse.go"},
	}}
	_, err := buildPackages(listed)
	if err == nil || !strings.Contains(err.Error(), "analysis: parsing badparse.go") {
		t.Errorf("error = %v, want parse error for badparse.go", err)
	}
}
