package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// ModulePath is the module the package belongs to.
	ModulePath string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type and object resolution for every expression.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool, parses every
// matched package, and type-checks it from source. Imports — standard
// library and intra-module alike — are resolved from compiler export
// data produced by `go list -export`, exactly as `go vet` resolves
// them, so loading needs no network access and no third-party code.
//
// Packages under a testdata directory are loadable when named
// explicitly (the analyzer test fixtures live there), matching the go
// tool's own pattern rules.
func Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	return buildPackages(listed)
}

// buildPackages parses and type-checks the target packages of one
// `go list` result. Split from Load so the error paths — a listed
// package carrying a load error, missing export data for an import,
// unparseable sources, vendored dep-only packages — are testable
// without fabricating go tool failures.
func buildPackages(listed []*listedPackage) ([]*Package, error) {
	// Export data for every dependency, keyed by import path.
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		modPath := ""
		if p.Module != nil {
			modPath = p.Module.Path
		}
		pkgs = append(pkgs, &Package{
			Path:       p.ImportPath,
			Dir:        p.Dir,
			ModulePath: modPath,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -e -json -export -deps` over patterns and
// decodes the JSON stream.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
