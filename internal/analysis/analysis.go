// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis, built for the
// cosmosvet suite (cmd/cosmosvet). The container this repository grows
// in has no module proxy access, so the x/tools framework cannot be
// vendored; this package reimplements the slice of it the suite needs
// on top of the standard library only: go/ast + go/types for the
// analyses, `go list -export` for dependency resolution, and the
// build cache's export data for type information of imports.
//
// The framework deliberately mirrors the x/tools API shape (Analyzer,
// Pass, Reportf) so the analyzers in the sub-packages could be ported
// to a real go/analysis multichecker by swapping imports if the
// dependency ever becomes available.
//
// Suppression: a finding can be silenced with a comment on the same
// line or the line directly above it:
//
//	//cosmosvet:allow <analyzer> <reason>
//
// The reason is mandatory — an allow comment without one is itself a
// finding — and unused allow comments are reported so stale
// suppressions cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// cosmosvet:allow comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps positions for every file of every loaded package.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for every expression.
	TypesInfo *types.Info
	// ModulePath is the module the package belongs to
	// ("github.com/cosmos-coherence/cosmos").
	ModulePath string

	report func(Diagnostic)
	config map[string]string
	cg     *CallGraph
}

// Config returns the value of a per-analyzer option, or def when the
// run set none. Options are namespaced "<analyzer>.<key>" in
// RunOptions.Config (and on the cosmosvet -config flag); an analyzer
// asks for its own options by bare key.
func (p *Pass) Config(key, def string) string {
	if v, ok := p.config[p.Analyzer.Name+"."+key]; ok {
		return v
	}
	return def
}

// ConfigInt is Config for integer-valued options. Malformed values
// fall back to def: a typo on the command line must not silently
// disable a check by erroring the whole run.
func (p *Pass) ConfigInt(key string, def int) int {
	v := p.Config(key, "")
	if v == "" {
		return def
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: message form used by go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}
