// Package hotpath implements the cosmosvet analyzer that keeps
// annotated zero-allocation paths allocation-free.
//
// A function opts in with a directive in its doc comment:
//
//	//cosmosvet:hotpath
//	func (h *eventHeap) push(it item) { ... }
//
//	//cosmosvet:hotpath loops
//	func evaluateSerial(...) { ... }
//
// The bare form checks the whole function body; the `loops` form
// checks only the bodies of its for/range loops (setup allocations
// before the loop are the normal way to keep the loop itself clean).
// From the checked region the analyzer walks same-package static
// calls — bounded by the hotpath.maxdepth config, default 8 — and
// flags heap-allocating constructs anywhere in the closure:
//
//   - make, new, and append (which may grow its backing array)
//   - function literals (closure captures escape)
//   - &T{} composite literals, and slice/map literals
//   - string concatenation and fmt.* calls
//   - interface boxing: concrete values passed to interface
//     parameters, assigned to interface variables, or converted
//
// Constructs inside panic(...) arguments are exempt — a panicking
// simulator no longer has a hot path. Calls that leave the package,
// go through interfaces, or through stored function values are trust
// boundaries: the walk stops there (annotate the target package's
// functions to extend coverage). A function reachable from several
// roots is checked once, attributed to the first root that reaches it
// in source order, with the full call chain in the diagnostic.
//
// Deliberate allocations — amortized slice growth, once-per-object
// arena setup, per-frame bookkeeping — are suppressed the usual way
// with //cosmosvet:allow hotpath <reason>, which keeps every exception
// visible in `cosmosvet -allow-report`.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid heap-allocating constructs reachable from " +
		"//cosmosvet:hotpath-annotated functions",
	Run: run,
}

// root is one annotated function.
type root struct {
	fd    *ast.FuncDecl
	fn    *types.Func
	loops bool
}

func run(pass *analysis.Pass) error {
	roots, rootSet := collectRoots(pass)
	if len(roots) == 0 {
		return nil
	}
	cg := pass.CallGraph()
	maxDepth := pass.ConfigInt("maxdepth", 8)
	checked := map[*types.Func]bool{}

	for _, r := range roots {
		rootName := analysis.FuncDisplayName(r.fn)
		regions := []ast.Node{r.fd.Body}
		if r.loops {
			regions = loopRegions(r.fd.Body)
		}

		var calls []*types.Func
		callSeen := map[*types.Func]bool{}
		for _, region := range regions {
			walk(pass, region,
				func(pos token.Pos, desc string) {
					pass.Reportf(pos, "hot path %s: %s", rootName, desc)
				},
				func(callee *types.Func) {
					if cg.DeclOf(callee) == nil || rootSet[callee] || callSeen[callee] {
						return
					}
					callSeen[callee] = true
					calls = append(calls, callee)
				})
		}
		sort.Slice(calls, func(i, j int) bool {
			return cg.DeclOf(calls[i]).Pos() < cg.DeclOf(calls[j]).Pos()
		})

		for _, callee := range calls {
			parent := cg.Reachable(callee, maxDepth-1, func(fn *types.Func) bool { return rootSet[fn] })
			fns := []*types.Func{callee}
			for fn := range parent {
				fns = append(fns, fn)
			}
			sort.Slice(fns, func(i, j int) bool {
				return cg.DeclOf(fns[i]).Pos() < cg.DeclOf(fns[j]).Pos()
			})
			for _, fn := range fns {
				if checked[fn] || rootSet[fn] {
					continue
				}
				checked[fn] = true
				chain := append([]string{rootName}, analysis.PathTo(parent, callee, fn)...)
				via := strings.Join(chain, " -> ")
				fnName := analysis.FuncDisplayName(fn)
				walk(pass, cg.DeclOf(fn).Body,
					func(pos token.Pos, desc string) {
						pass.Reportf(pos, "hot path %s: %s in %s (via %s)", rootName, desc, fnName, via)
					},
					nil)
			}
		}
	}
	return nil
}

// collectRoots finds every annotated function, in source order.
func collectRoots(pass *analysis.Pass) ([]root, map[*types.Func]bool) {
	var roots []root
	set := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, "//cosmosvet:hotpath")
				if !ok {
					continue
				}
				r := root{fd: fd}
				switch strings.TrimSpace(rest) {
				case "":
				case "loops":
					r.loops = true
				default:
					pass.Reportf(c.Pos(), "cosmosvet:hotpath: unknown scope %q (want nothing or \"loops\")", strings.TrimSpace(rest))
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				r.fn = fn
				roots = append(roots, r)
				set[fn] = true
				break
			}
		}
	}
	return roots, set
}

// loopRegions returns the outermost for/range statements of a body.
func loopRegions(body *ast.BlockStmt) []ast.Node {
	var regions []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			regions = append(regions, n)
			return false
		}
		return true
	})
	return regions
}

// walk traverses a region applying the hot-path rules: it reports each
// allocating construct once via report, feeds every statically-resolved
// call to onCall (when non-nil), skips panic arguments entirely, and
// does not descend into nested function literals beyond flagging them.
func walk(pass *analysis.Pass, region ast.Node, report func(token.Pos, string), onCall func(*types.Func)) {
	info := pass.TypesInfo
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n.Fun, "panic") {
				return false // failure path: a panicking run has no hot path
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				// Conversion, not a call.
				if len(n.Args) == 1 && boxes(info, tv.Type, n.Args[0]) {
					report(n.Pos(), "conversion to interface boxes its operand")
				}
				return true
			}
			switch {
			case isBuiltin(info, n.Fun, "make"):
				report(n.Pos(), "make allocates")
			case isBuiltin(info, n.Fun, "new"):
				report(n.Pos(), "new allocates")
			case isBuiltin(info, n.Fun, "append"):
				report(n.Pos(), "append may grow its backing array")
			default:
				if fn := analysis.StaticCallee(info, n); fn != nil {
					if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						report(n.Pos(), "call to fmt."+fn.Name()+" allocates")
						return true // args feed the flagged call; one finding is enough
					}
					if onCall != nil {
						onCall(fn)
					}
				}
				reportArgBoxing(pass, n, report)
			}
			return true

		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
					return false
				}
			}

		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}

		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if lt := info.TypeOf(lhs); lt != nil && boxes(info, lt, n.Rhs[i]) {
						report(n.Rhs[i].Pos(), "assignment boxes into an interface")
					}
				}
			}

		case *ast.ValueSpec:
			if n.Type != nil {
				if lt := info.TypeOf(n.Type); lt != nil {
					for _, v := range n.Values {
						if boxes(info, lt, v) {
							report(v.Pos(), "assignment boxes into an interface")
						}
					}
				}
			}
		}
		return true
	})
}

// reportArgBoxing flags concrete arguments passed to interface
// parameters of a call, the classic hidden allocation.
func reportArgBoxing(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass.TypesInfo, pt, arg) {
			report(arg.Pos(), "argument boxes into an interface parameter")
		}
	}
}

// boxes reports whether assigning rhs to an lhs of type lt converts a
// concrete value to an interface (untyped nil never boxes).
func boxes(info *types.Info, lt types.Type, rhs ast.Expr) bool {
	if lt == nil {
		return false
	}
	if _, ok := lt.Underlying().(*types.Interface); !ok {
		return false
	}
	rt := info.TypeOf(rhs)
	if rt == nil {
		return false
	}
	switch u := rt.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		// Pointer-shaped values live in the interface word directly.
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
