// Package hotclean is an allocation-free hot path: index arithmetic,
// in-place swaps, and fixed-capacity writes only. The hotpath analyzer
// must report nothing, including in the un-annotated helper that does
// allocate — it is outside every hot path's closure.
package hotclean

type entry struct{ key, prio int }

type ring struct {
	buf  []entry
	head int
	tail int
}

//cosmosvet:hotpath
func (r *ring) push(e entry) bool {
	next := (r.tail + 1) % len(r.buf)
	if next == r.head {
		return false
	}
	r.buf[r.tail] = e
	r.tail = next
	return true
}

//cosmosvet:hotpath
func (r *ring) pop() (entry, bool) {
	if r.head == r.tail {
		return entry{}, false
	}
	e := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	return e, true
}

//cosmosvet:hotpath loops
func sumPrio(r *ring) int {
	t := 0
	for i := r.head; i != r.tail; i = (i + 1) % len(r.buf) {
		t += r.buf[i].prio
	}
	return t
}

// grow allocates, but nothing annotated reaches it.
func grow(r *ring) {
	r.buf = append(r.buf, entry{})
}
