// Package hot exercises every hotpath-analyzer finding: direct
// allocating constructs, the loops-only scope, interface boxing in its
// three forms, the panic exemption, and an allocation buried two
// static calls below the annotated root.
package hot

import "fmt"

type item struct{ key, val int }

type heap struct {
	items []item
	n     int
}

//cosmosvet:hotpath
func (h *heap) push(it item) {
	h.items = append(h.items, it) // want `hot path heap.push: append may grow its backing array`
	h.n++
}

// pop itself is clean; the allocation hides in label, two calls down.

//cosmosvet:hotpath
func (h *heap) pop() item {
	it := h.items[h.n-1]
	h.n--
	h.note(it.key)
	return it
}

func (h *heap) note(k int) {
	h.label(k)
}

func (h *heap) label(k int) string {
	return fmt.Sprintf("k=%d", k) // want `hot path heap.pop: call to fmt.Sprintf allocates in heap.label \(via heap.pop -> heap.note -> heap.label\)`
}

//cosmosvet:hotpath
func build(n int) *item {
	s := make([]int, n) // want `hot path build: make allocates`
	_ = s
	return new(item) // want `hot path build: new allocates`
}

//cosmosvet:hotpath
func mix(a, b string) string {
	g := func() {} // want `hot path mix: function literal allocates a closure`
	g()
	p := &item{} // want `hot path mix: &composite literal allocates`
	_ = p
	if a == "" {
		panic("empty: " + b) // failure path: exempt
	}
	return a + b // want `hot path mix: string concatenation allocates`
}

//cosmosvet:hotpath
func lits() {
	s := []int{1, 2}   // want `hot path lits: slice literal allocates`
	m := map[int]int{} // want `hot path lits: map literal allocates`
	_, _ = s, m
}

func consume(v interface{}) { _ = v }

//cosmosvet:hotpath
func box(v int) interface{} {
	var x interface{} = v // want `hot path box: assignment boxes into an interface`
	x = v + 1             // want `hot path box: assignment boxes into an interface`
	consume(v) // want `hot path box: argument boxes into an interface parameter`
	_ = x
	return any(v) // want `hot path box: conversion to interface boxes its operand`
}

// boxPtr passes a pointer: it fits the interface word directly, so
// nothing allocates and nothing is reported.

//cosmosvet:hotpath
func boxPtr(p *item) {
	consume(p)
}

// sum is loops-scoped: the setup make is fine, the append inside the
// range is not.

//cosmosvet:hotpath loops
func sum(xs []int) int {
	buf := make([]int, 0, 8)
	t := 0
	for _, x := range xs {
		t += x
		buf = append(buf, x) // want `hot path sum: append may grow its backing array`
	}
	_ = buf
	return t
}

// amortized shows the escape hatch: a reasoned allow silences the
// finding without weakening the analyzer elsewhere.

//cosmosvet:hotpath
func (h *heap) amortized(it item) {
	//cosmosvet:allow hotpath amortized growth is the point of this fixture
	h.items = append(h.items, it)
}
