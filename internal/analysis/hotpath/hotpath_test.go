package hotpath_test

import (
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis/analysistest"
	"github.com/cosmos-coherence/cosmos/internal/analysis/hotpath"
)

// TestHotpath pins every finding class against the hot fixture: each
// allocating construct, the loops-only scope, all three boxing forms,
// the panic exemption, and a chain diagnostic two calls deep.
func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/hot")
}

// TestHotpathClean requires silence on genuinely allocation-free code,
// even when the package contains allocating functions no hot path
// reaches.
func TestHotpathClean(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/hotclean")
}
