package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// testcheck flags every function whose name starts with "target",
// giving the allowcheck fixture something deterministic to suppress.
var testcheck = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flags every function whose name starts with target",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "target") {
					pass.Reportf(fd.Pos(), "function %s is a target", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func loadAllowFixture(t *testing.T) []*analysis.Package {
	t.Helper()
	pkgs, err := analysis.Load([]string{"./testdata/src/allowcheck"})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs
}

// TestAllowSuppression checks the non-strict contract: a reasoned
// allow on the preceding line suppresses the finding, malformed allows
// are findings themselves, and unsuppressed findings survive.
func TestAllowSuppression(t *testing.T) {
	pkgs := loadAllowFixture(t)
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{testcheck}, analysis.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"cosmosvet:allow needs an analyzer name and a reason",
		"cosmosvet:allow testcheck needs a reason",
		"function target2 is a target",
	}
	assertDiags(t, diags, wantSubstrings)
}

// TestStrictMode checks that strict runs additionally flag stale
// allows and allows naming unknown analyzers.
func TestStrictMode(t *testing.T) {
	pkgs := loadAllowFixture(t)
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{testcheck}, analysis.RunOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"cosmosvet:allow needs an analyzer name and a reason",
		"cosmosvet:allow testcheck needs a reason",
		"function target2 is a target",
		`unknown analyzer "othercheck"`,
		"stale cosmosvet:allow othercheck",
	}
	assertDiags(t, diags, wantSubstrings)
}

// assertDiags requires diags to match wantSubstrings one-to-one, in
// order (Run sorts by position, and the fixture orders its cases).
func assertDiags(t *testing.T, diags []analysis.Diagnostic, wantSubstrings []string) {
	t.Helper()
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wantSubstrings))
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

func TestInSimulationCore(t *testing.T) {
	const mod = "github.com/cosmos-coherence/cosmos"
	cases := []struct {
		pkg  string
		want bool
	}{
		{mod + "/internal/sim", true},
		{mod + "/internal/stache", true},
		{mod + "/internal/workload", true},
		{mod + "/internal/governor", true},
		{mod + "/internal/speculate", true},
		{mod + "/internal/experiments", false},
		{mod + "/internal/coherence", false},
		{mod + "/cmd/cosmos-tables", false},
		{mod + "/internal/analysis/determinism/testdata/src/det", true},
		{mod + "/internal/analysis/testdata/src/allowcheck", true},
		// The testdata escape is anchored to the analyzer fixture
		// roots: a testdata directory elsewhere in the module, or in a
		// different module entirely, must not drag a package into the
		// simulation-core scope.
		{mod + "/internal/experiments/testdata/src/exp", false},
		{mod + "/testdata/src/sim", false},
		{"example.com/other/internal/analysis/determinism/testdata/src/det", false},
		{"example.com/other/testdata/internal/sim", false},
		{"example.com/other/internal/sim", false},
	}
	for _, c := range cases {
		if got := analysis.InSimulationCore(mod, c.pkg); got != c.want {
			t.Errorf("InSimulationCore(%q) = %v, want %v", c.pkg, got, c.want)
		}
	}
}
