package exhaustive_test

import (
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis/analysistest"
	"github.com/cosmos-coherence/cosmos/internal/analysis/exhaustive"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, "testdata/src/exh")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer, "testdata/src/exhclean")
}
