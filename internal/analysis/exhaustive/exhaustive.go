// Package exhaustive implements the cosmosvet analyzer that keeps
// protocol-transition switches total.
//
// The Stache protocol and the predictors around it encode their state
// machines as switches over small uint8 enums: stache.CacheState,
// dirState, pendingKind, coherence.MsgType, trace.Side. The paper's
// Figure 6/7 message signatures — and every fault experiment built on
// them — are only meaningful if each of those switches handles every
// declared state. This analyzer enforces, for every switch whose tag
// is a module-declared uint8 enum (a named uint8 type with at least
// two package-level constants):
//
//   - either every declared constant value is covered by a case, or
//   - the switch has a default clause that fails loudly (panics,
//     calls a Fatal-style function, or constructs an error).
//
// Adding a protocol state without handling it then fails `make lint`
// instead of silently mis-transitioning at run time. Count sentinels
// (constants whose name starts with "num"/"Num", such as
// coherence.NumMsgTypes) are not real states and are exempt.
//
// Suppress a deliberately partial switch with
// //cosmosvet:allow exhaustive <reason>.
package exhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// Analyzer is the exhaustive-switch check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "require switches over module uint8 enums to cover every declared " +
		"constant or fail loudly in default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

// enumInfo describes the declared constants of one enum type.
type enumInfo struct {
	name   string
	values map[int64][]string // constant value -> declared names
}

// checkSwitch verifies one switch statement over an enum tag.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	enum, ok := enumFor(pass, tagType)
	if !ok {
		return
	}

	covered := map[int64]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				// A non-constant case defeats static coverage analysis;
				// treat the switch as out of scope rather than guess.
				return
			}
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				return
			}
			covered[v] = true
		}
	}

	var missing []string
	for v, names := range enum.values {
		if !covered[v] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)

	if defaultClause == nil {
		pass.Reportf(sw.Switch,
			"non-exhaustive switch over %s: missing %s and no default; add the cases or a panicking default",
			enum.name, strings.Join(missing, ", "))
		return
	}
	if !failsLoudly(pass, defaultClause) {
		pass.Reportf(sw.Switch,
			"switch over %s has a silent default that would swallow %s; make the default panic or return an error so new states fail loudly",
			enum.name, strings.Join(missing, ", "))
	}
}

// enumFor reports whether t is a module-declared uint8 enum, returning
// its declared constants grouped by value.
func enumFor(pass *analysis.Pass, t types.Type) (enumInfo, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return enumInfo{}, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return enumInfo{}, false
	}
	if pass.ModulePath == "" || !strings.HasPrefix(obj.Pkg().Path(), pass.ModulePath) {
		return enumInfo{}, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Uint8 {
		return enumInfo{}, false
	}

	info := enumInfo{name: typeDisplayName(pass, obj), values: map[int64][]string{}}
	scope := obj.Pkg().Scope()
	distinct := 0
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		// Count sentinels bound the enum; they are not states.
		if strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num") {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		if len(info.values[v]) == 0 {
			distinct++
		}
		info.values[v] = append(info.values[v], name)
	}
	if distinct < 2 {
		return enumInfo{}, false
	}
	return info, true
}

// typeDisplayName renders the enum name as it reads at the switch
// site: bare within its own package, qualified otherwise.
func typeDisplayName(pass *analysis.Pass, obj *types.TypeName) string {
	if obj.Pkg() == pass.Pkg {
		return obj.Name()
	}
	return fmt.Sprintf("%s.%s", obj.Pkg().Name(), obj.Name())
}

// failsLoudly reports whether the default clause panics or produces an
// error: a panic call, a Fatal/Panic-style call, or a constructed
// error (errors.New, fmt.Errorf) — typically inside a return.
func failsLoudly(pass *analysis.Pass, cc *ast.CaseClause) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					loud = true
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
					loud = true
				}
				if fn, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func); ok && fn.Pkg() != nil {
					if (fn.Pkg().Path() == "errors" && fn.Name() == "New") ||
						(fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf") {
						loud = true
					}
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}
