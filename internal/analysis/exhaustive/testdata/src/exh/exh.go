// Package exh is the exhaustive analyzer's positive fixture: partial
// switches over a local uint8 enum in every shape the analyzer
// distinguishes. Loaded only by analysistest.
package exh

import (
	"errors"
	"fmt"
)

type state uint8

const (
	idle state = iota
	busy
	done
	numStates // count sentinel: not a state
)

func missingNoDefault(s state) string {
	switch s { // want `non-exhaustive switch over state: missing done and no default`
	case idle:
		return "idle"
	case busy:
		return "busy"
	}
	return "?"
}

func silentDefault(s state) int {
	switch s { // want `switch over state has a silent default that would swallow busy, done`
	case idle:
		return 0
	default:
		return -1
	}
}

func covered(s state) string {
	switch s {
	case idle:
		return "idle"
	case busy:
		return "busy"
	case done:
		return "done"
	}
	return "?"
}

func panickingDefault(s state) string {
	switch s {
	case idle:
		return "idle"
	default:
		panic(fmt.Sprintf("unhandled state %d", uint8(s)))
	}
}

func errorDefault(s state) error {
	switch s {
	case idle:
		return nil
	default:
		return errors.New("unhandled state")
	}
}

func allowedPartial(s state) bool {
	//cosmosvet:allow exhaustive fixture exercises the escape hatch
	switch s {
	case idle:
		return true
	}
	return false
}

// narrow has a single constant, so it is not an enum and its switches
// are out of scope.
type narrow uint8

const lone narrow = 1

func narrowSwitch(n narrow) bool {
	switch n {
	case lone:
		return true
	}
	return false
}

func nonConstantCase(s, sentinel state) bool {
	// A non-constant case defeats static coverage; the switch is out of
	// scope rather than guessed at.
	switch s {
	case sentinel:
		return true
	}
	return false
}
