// Package exhclean is the exhaustive analyzer's clean fixture: every
// switch over the enum is total or fails loudly. The analyzer must
// stay silent here.
package exhclean

import "fmt"

type phase uint8

const (
	start phase = iota
	middle
	finish
)

func name(p phase) string {
	switch p {
	case start:
		return "start"
	case middle:
		return "middle"
	case finish:
		return "finish"
	default:
		panic(fmt.Sprintf("unhandled phase %d", uint8(p)))
	}
}

func terminal(p phase) bool {
	switch p {
	case start, middle:
		return false
	case finish:
		return true
	}
	return false
}
