package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one parsed //cosmosvet:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      Diagnostic // reporting position for malformed/stale allows
	used     bool
}

// RunOptions tunes a Run call.
type RunOptions struct {
	// Strict additionally reports stale allow comments (ones that
	// suppressed nothing) and allow comments naming an analyzer that
	// is not part of this run. cmd/cosmosvet runs strict; the
	// single-analyzer test harness does not, since an allow aimed at
	// another analyzer would falsely look stale.
	Strict bool
	// Config carries per-analyzer options, keyed "<analyzer>.<key>"
	// (see Pass.Config). cosmosvet populates it from -config flags.
	Config map[string]string
}

// AllowInfo describes one active //cosmosvet:allow escape hatch, for
// the cosmosvet -allow-report mode: every suppression in the analyzed
// packages, with its mandatory reason and whether it suppressed
// anything in this run.
type AllowInfo struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	Used     bool
}

// Run executes every analyzer over every package, applies
// //cosmosvet:allow suppressions, and returns the surviving
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	diags, _, err := RunWithInfo(pkgs, analyzers, opts)
	return diags, err
}

// RunWithInfo is Run plus the list of every allow directive seen,
// sorted by position, for suppression-audit reporting.
func RunWithInfo(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, []AllowInfo, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	var allAllows []AllowInfo
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg)
		out = append(out, malformed...)

		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ModulePath: pkg.ModulePath,
				report:     func(d Diagnostic) { raw = append(raw, d) },
				config:     opts.Config,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}

		for _, d := range raw {
			if al := matchAllow(allows, d); al != nil {
				al.used = true
				continue
			}
			out = append(out, d)
		}

		if opts.Strict {
			for _, al := range allows {
				if !al.used {
					out = append(out, Diagnostic{
						Analyzer: "cosmosvet",
						Pos:      al.pos.Pos,
						Message:  fmt.Sprintf("stale cosmosvet:allow %s — it suppresses nothing; remove it", al.analyzer),
					})
				}
				if !known[al.analyzer] {
					out = append(out, Diagnostic{
						Analyzer: "cosmosvet",
						Pos:      al.pos.Pos,
						Message:  fmt.Sprintf("cosmosvet:allow names unknown analyzer %q", al.analyzer),
					})
				}
			}
		}

		for _, al := range allows {
			allAllows = append(allAllows, AllowInfo{
				Analyzer: al.analyzer,
				Reason:   al.reason,
				Pos:      al.pos.Pos,
				Used:     al.used,
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(allAllows, func(i, j int) bool {
		a, b := allAllows[i], allAllows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, allAllows, nil
}

// matchAllow finds an unused-or-used allow covering d: same file, same
// analyzer, on the diagnostic's line or the line directly above it.
func matchAllow(allows []*allowDirective, d Diagnostic) *allowDirective {
	for _, al := range allows {
		if al.analyzer != d.Analyzer || al.file != d.Pos.Filename {
			continue
		}
		if al.line == d.Pos.Line || al.line == d.Pos.Line-1 {
			return al
		}
	}
	return nil
}

// collectAllows parses every //cosmosvet:allow comment in the package.
// Malformed directives (missing analyzer name or missing reason) are
// returned as diagnostics: a suppression without a reason defeats the
// point of machine-checked invariants.
func collectAllows(pkg *Package) ([]*allowDirective, []Diagnostic) {
	var allows []*allowDirective
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//cosmosvet:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "cosmosvet",
						Pos:      pos,
						Message:  "cosmosvet:allow needs an analyzer name and a reason: //cosmosvet:allow <analyzer> <reason>",
					})
					continue
				}
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "cosmosvet",
						Pos:      pos,
						Message:  fmt.Sprintf("cosmosvet:allow %s needs a reason explaining why the finding is safe to suppress", fields[0]),
					})
					continue
				}
				allows = append(allows, &allowDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     pos.Filename,
					line:     pos.Line,
					pos:      Diagnostic{Pos: pos},
				})
			}
		}
	}
	return allows, malformed
}
