// Package analysistest runs a single analyzer over a fixture package
// and checks its findings against // want comment expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under the calling package's testdata/src/<name>
// directory. They are real packages of this module — `go list` loads
// explicitly named testdata paths even though wildcards skip them —
// so fixtures type-check with the exact loader the production
// cosmosvet binary uses, and may import the module's own packages.
//
// An expectation is a trailing comment of quoted regular expressions:
//
//	now := time.Now() // want `wall-clock`
//
// Every finding must match a want on its line and every want must be
// matched by a finding; anything else fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// wantRe extracts the quoted patterns of a // want comment. Both
// backquoted and double-quoted forms are accepted.
var wantRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// expectation is one want pattern awaiting a matching finding.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/src/flagged") and checks a's findings
// against the fixture's want comments. Suppression via
// //cosmosvet:allow is applied before matching, so fixtures can assert
// the escape hatch works by carrying an allow and no want.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load([]string{"./" + strings.TrimPrefix(dir, "./")})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	expectations, err := collectWants(t, pkg)
	if err != nil {
		t.Fatal(err)
	}

	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, analysis.RunOptions{})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !matchWant(expectations, d) {
			t.Errorf("%s: unexpected finding: %s", d.Pos, d.Message)
		}
	}
	for _, w := range expectations {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// matchWant marks and reports a want covering d.
func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, pkg *analysis.Package) ([]*expectation, error) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRe.FindAllString(rest, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						unq, err := strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
