// Package transition implements the cosmosvet analyzer that keeps a
// protocol's dispatch switches and its declared transition spec table
// in lockstep.
//
// A package opts in by declaring one spec table per dispatch side and
// annotating it:
//
//	//cosmosvet:transitions directory dispatch=Directory.Deliver states=dirState reject=DispRejected exclude=MsgInvalid
//	var DirectoryTransitions = []DirTransition{
//		{EntryIdle, coherence.GetROReq, DispHandled},
//		...
//	}
//
// The table's element type must be a struct whose first three fields
// are (state enum, message enum, disposition enum), all module-declared
// uint8 enums; rows may be positional or keyed. The directive names:
//
//   - the side label used in diagnostics ("directory", "cache"),
//   - dispatch=Func or dispatch=Recv.Method, the function whose
//     outermost switch over the message enum is the dispatch matrix,
//   - reject=Const, the disposition marking a (state, message) pair the
//     dispatch is *supposed* to reject (its assertion/panic path),
//   - states=Type (optional), the enum the dispatch code actually
//     switches and compares on when it differs from the row field's
//     exported mirror type (value-compatible, e.g. dirState for
//     EntryState),
//   - exclude=A,B (optional), message constants that are not real
//     protocol messages (e.g. the MsgInvalid zero value).
//
// With the tables in hand the analyzer enforces, statically:
//
//   - every message with a live (non-rejected) row has a dispatch case:
//     deleting a `case` from Deliver names each orphaned
//     (state, message) pair — "unhandled live pair";
//   - every dispatch case has declared rows, at least one of them live
//     — "handled but undeclared" and dead-dispatch findings;
//   - the table is total: every (state, message) combination of a
//     declared message has a row, every message type belongs to exactly
//     one side's table, and rows that duplicate a pair or use values
//     matching no declared constant are dead;
//   - every state with a live row is actually distinguished (a case
//     label or ==/!= comparison) somewhere in the dispatch call
//     closure, so a state the spec calls live cannot be one the code
//     never looks at.
//
// The state axis of each individual handler is deliberately left to the
// runtime spec pin test (internal/stache's spec_test.go): handlers
// express per-state behavior through assignments and assertion
// predicates that static case extraction cannot classify without
// guessing. Count sentinels (Num*/num* prefixes) are exempt
// everywhere. Suppress individual findings with
// //cosmosvet:allow transition <reason>.
package transition

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// Analyzer is the transition-coverage check.
var Analyzer = &analysis.Analyzer{
	Name: "transition",
	Doc: "cross-check protocol dispatch switches against declared " +
		"(state, message) transition spec tables",
	Run: run,
}

// directive is one parsed //cosmosvet:transitions comment.
type directive struct {
	side     string
	dispatch string
	states   string
	reject   string
	exclude  []string
	pos      token.Pos
}

// enum is the declared constant universe of one named uint8 type.
type enum struct {
	typ    *types.Named
	names  map[int64]string
	values []int64 // ascending, deterministic iteration order
}

// row is one parsed spec-table row.
type row struct {
	pos   token.Pos
	state int64
	msg   int64
	disp  int64
}

// table is one fully-resolved spec table.
type table struct {
	dir       directive
	pos       token.Pos // the table var, for table-level findings
	rows      []row
	stateEnum enum
	msgEnum   enum
	rejectVal int64
	mention   *types.Named // enum the dispatch code is expected to use
	dispFn    *types.Func
	dispDecl  *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	var tables []*table
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil {
					doc = gd.Doc
				}
				d, ok := parseDirective(pass, doc)
				if !ok {
					continue
				}
				if t := resolveTable(pass, d, vs); t != nil {
					tables = append(tables, t)
				}
			}
		}
	}
	if len(tables) == 0 {
		return nil
	}
	for _, t := range tables {
		checkTable(pass, t)
	}
	checkCrossTables(pass, tables)
	return nil
}

// parseDirective extracts a //cosmosvet:transitions directive from a
// doc comment, reporting malformed ones.
func parseDirective(pass *analysis.Pass, doc *ast.CommentGroup) (directive, bool) {
	if doc == nil {
		return directive{}, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//cosmosvet:transitions")
		if !ok {
			continue
		}
		d := directive{pos: c.Pos()}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			pass.Reportf(c.Pos(), "cosmosvet:transitions needs a side label and dispatch=/reject= options")
			return directive{}, false
		}
		d.side = fields[0]
		for _, f := range fields[1:] {
			key, val, found := strings.Cut(f, "=")
			if !found || val == "" {
				pass.Reportf(c.Pos(), "cosmosvet:transitions: malformed option %q, want key=value", f)
				return directive{}, false
			}
			switch key {
			case "dispatch":
				d.dispatch = val
			case "states":
				d.states = val
			case "reject":
				d.reject = val
			case "exclude":
				d.exclude = strings.Split(val, ",")
			default:
				pass.Reportf(c.Pos(), "cosmosvet:transitions: unknown option %q", key)
				return directive{}, false
			}
		}
		if d.dispatch == "" || d.reject == "" {
			pass.Reportf(c.Pos(), "cosmosvet:transitions %s: dispatch= and reject= are required", d.side)
			return directive{}, false
		}
		return d, true
	}
	return directive{}, false
}

// resolveTable turns an annotated var declaration into a table, or
// reports why it cannot and returns nil.
func resolveTable(pass *analysis.Pass, d directive, vs *ast.ValueSpec) *table {
	if len(vs.Names) != 1 || len(vs.Values) != 1 {
		pass.Reportf(d.pos, "cosmosvet:transitions %s must annotate a single var with a literal table", d.side)
		return nil
	}
	lit, ok := vs.Values[0].(*ast.CompositeLit)
	if !ok {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: table value must be a composite literal", d.side)
		return nil
	}
	slice, ok := pass.TypesInfo.TypeOf(lit).Underlying().(*types.Slice)
	if !ok {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: table must be a slice of row structs", d.side)
		return nil
	}
	strct, ok := slice.Elem().Underlying().(*types.Struct)
	if !ok || strct.NumFields() < 3 {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: row type must be a struct with (state, message, disposition) as its first three fields", d.side)
		return nil
	}
	t := &table{dir: d, pos: vs.Pos()}

	var ok1, ok2 bool
	t.stateEnum, ok1 = enumOf(strct.Field(0).Type())
	t.msgEnum, ok2 = enumOf(strct.Field(1).Type())
	if !ok1 || !ok2 {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: state and message fields must be named uint8 enum types", d.side)
		return nil
	}
	for _, name := range d.exclude {
		c, ok := t.msgEnum.typ.Obj().Pkg().Scope().Lookup(name).(*types.Const)
		if !ok {
			pass.Reportf(d.pos, "cosmosvet:transitions %s: exclude names unknown constant %q", d.side, name)
			return nil
		}
		v, _ := constant.Int64Val(c.Val())
		t.msgEnum.drop(v)
	}

	rc, ok := pass.Pkg.Scope().Lookup(d.reject).(*types.Const)
	if !ok {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: reject names unknown constant %q", d.side, d.reject)
		return nil
	}
	t.rejectVal, _ = constant.Int64Val(rc.Val())

	t.mention = t.stateEnum.typ
	if d.states != "" {
		tn, ok := pass.Pkg.Scope().Lookup(d.states).(*types.TypeName)
		if !ok {
			pass.Reportf(d.pos, "cosmosvet:transitions %s: states names unknown type %q", d.side, d.states)
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			pass.Reportf(d.pos, "cosmosvet:transitions %s: states type %q is not a named enum", d.side, d.states)
			return nil
		}
		t.mention = named
	}

	t.dispDecl, t.dispFn = findDispatch(pass, d.dispatch)
	if t.dispDecl == nil {
		pass.Reportf(d.pos, "cosmosvet:transitions %s: dispatch %s not found in this package", d.side, d.dispatch)
		return nil
	}

	fieldNames := []string{strct.Field(0).Name(), strct.Field(1).Name(), strct.Field(2).Name()}
	for _, elt := range lit.Elts {
		rl, ok := elt.(*ast.CompositeLit)
		if !ok {
			pass.Reportf(elt.Pos(), "transition table %s: row must be a struct literal", d.side)
			continue
		}
		if r, ok := parseRow(pass, d.side, rl, fieldNames); ok {
			t.rows = append(t.rows, r)
		}
	}
	return t
}

// parseRow extracts the three constant values of one row literal.
func parseRow(pass *analysis.Pass, side string, rl *ast.CompositeLit, fieldNames []string) (row, bool) {
	exprs := make([]ast.Expr, 3)
	for i, elt := range rl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, _ := kv.Key.(*ast.Ident)
			for fi, fn := range fieldNames {
				if key != nil && key.Name == fn {
					exprs[fi] = kv.Value
				}
			}
			continue
		}
		if i < 3 {
			exprs[i] = elt
		}
	}
	r := row{pos: rl.Pos()}
	vals := make([]int64, 3)
	for i, e := range exprs {
		if e == nil {
			pass.Reportf(rl.Pos(), "transition table %s: row is missing its %s field", side, fieldNames[i])
			return row{}, false
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil {
			pass.Reportf(e.Pos(), "transition table %s: row field %s must be a declared constant", side, fieldNames[i])
			return row{}, false
		}
		v, ok := constant.Int64Val(tv.Value)
		if !ok {
			pass.Reportf(e.Pos(), "transition table %s: row field %s must be an integer constant", side, fieldNames[i])
			return row{}, false
		}
		vals[i] = v
	}
	r.state, r.msg, r.disp = vals[0], vals[1], vals[2]
	return r, true
}

// checkTable runs every per-table check.
func checkTable(pass *analysis.Pass, t *table) {
	caseOf := dispatchCases(pass, t)
	if caseOf == nil {
		return // no dispatch switch; already reported
	}

	type pair struct{ state, msg int64 }
	seen := map[pair]token.Pos{}
	rowsByMsg := map[int64][]row{}
	liveByMsg := map[int64]int{}
	liveByState := map[int64]bool{}
	for _, r := range t.rows {
		if _, ok := t.stateEnum.names[r.state]; !ok {
			pass.Reportf(r.pos, "dead spec row: state value %d matches no declared %s constant", r.state, t.stateEnum.typ.Obj().Name())
			continue
		}
		if _, ok := t.msgEnum.names[r.msg]; !ok {
			pass.Reportf(r.pos, "dead spec row: message value %d matches no declared %s constant (or it is excluded)", r.msg, t.msgEnum.typ.Obj().Name())
			continue
		}
		p := pair{r.state, r.msg}
		if _, dup := seen[p]; dup {
			pass.Reportf(r.pos, "dead spec row: duplicate disposition for (%s, %s)", t.stateEnum.names[r.state], t.msgEnum.names[r.msg])
			continue
		}
		seen[p] = r.pos
		rowsByMsg[r.msg] = append(rowsByMsg[r.msg], r)
		if r.disp != t.rejectVal {
			liveByMsg[r.msg]++
			liveByState[r.state] = true
		}
	}

	// Message axis: declared rows vs dispatch cases, both directions,
	// and per-message state totality.
	for _, m := range t.msgEnum.values {
		rows := rowsByMsg[m]
		_, hasCase := caseOf[m]
		switch {
		case len(rows) == 0:
			if hasCase {
				pass.Reportf(caseOf[m], "%s dispatch %s handles %s but the spec table declares no transitions for it",
					t.dir.side, t.dir.dispatch, t.msgEnum.names[m])
			}
			// A message in no table at all is reported by the
			// cross-table totality check, once, not per table.
			continue
		case !hasCase && liveByMsg[m] > 0:
			for _, r := range rows {
				if r.disp != t.rejectVal {
					pass.Reportf(r.pos, "unhandled live pair (%s, %s): %s dispatch %s has no case for %s",
						t.stateEnum.names[r.state], t.msgEnum.names[m], t.dir.side, t.dir.dispatch, t.msgEnum.names[m])
				}
			}
		case hasCase && liveByMsg[m] == 0:
			pass.Reportf(caseOf[m], "%s dispatch %s handles %s but every declared row rejects it",
				t.dir.side, t.dir.dispatch, t.msgEnum.names[m])
		}
		for _, s := range t.stateEnum.values {
			if _, ok := seen[pair{s, m}]; !ok {
				pass.Reportf(t.pos, "spec hole: no disposition declared for (%s, %s) in the %s table",
					t.stateEnum.names[s], t.msgEnum.names[m], t.dir.side)
			}
		}
	}

	// State axis, side level: a state the spec declares live must be
	// distinguishable somewhere in the dispatch closure.
	mentions := mentionValues(pass, t.dispFn, t.mention)
	for _, s := range t.stateEnum.values {
		if liveByState[s] && !mentions[s] {
			pass.Reportf(t.pos, "state %s has live rows in the %s table but dispatch %s never distinguishes it (no case label or comparison in its call closure)",
				t.stateEnum.names[s], t.dir.side, t.dir.dispatch)
		}
	}
}

// dispatchCases returns the constant case values of the dispatch
// function's outermost switch over the table's message enum.
func dispatchCases(pass *analysis.Pass, t *table) map[int64]token.Pos {
	var sw *ast.SwitchStmt
	ast.Inspect(t.dispDecl.Body, func(n ast.Node) bool {
		if sw != nil {
			return false
		}
		s, ok := n.(*ast.SwitchStmt)
		if !ok || s.Tag == nil {
			return true
		}
		if tt, ok := pass.TypesInfo.TypeOf(s.Tag).(*types.Named); ok && types.Identical(tt, t.msgEnum.typ) {
			sw = s
			return false
		}
		return true
	})
	if sw == nil {
		pass.Reportf(t.dir.pos, "cosmosvet:transitions %s: dispatch %s has no switch over %s",
			t.dir.side, t.dir.dispatch, t.msgEnum.typ.Obj().Name())
		return nil
	}
	cases := map[int64]token.Pos{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(tv.Value); ok {
					if _, dup := cases[v]; !dup {
						cases[v] = e.Pos()
					}
				}
			}
		}
	}
	return cases
}

// checkCrossTables enforces that every message type belongs to exactly
// one side's table.
func checkCrossTables(pass *analysis.Pass, tables []*table) {
	type group struct {
		universe enum
		tables   []*table
	}
	var groups []*group
	for _, t := range tables {
		var g *group
		for _, existing := range groups {
			if types.Identical(existing.universe.typ, t.msgEnum.typ) {
				g = existing
				break
			}
		}
		if g == nil {
			g = &group{universe: t.msgEnum}
			groups = append(groups, g)
		}
		g.tables = append(g.tables, t)
	}
	for _, g := range groups {
		for _, m := range g.universe.values {
			var holders []*table
			for _, t := range g.tables {
				for _, r := range t.rows {
					if r.msg == m {
						holders = append(holders, t)
						break
					}
				}
			}
			switch {
			case len(holders) == 0:
				pass.Reportf(g.tables[0].pos, "message type %s is declared in no transition table", g.universe.names[m])
			case len(holders) > 1:
				pass.Reportf(holders[1].pos, "message type %s is declared in both the %s and %s tables",
					g.universe.names[m], holders[0].dir.side, holders[1].dir.side)
			}
		}
	}
}

// mentionValues collects every constant of enum type mt that the
// dispatch function's same-package call closure distinguishes: case
// labels of switches over mt and ==/!= comparisons against mt
// constants. Assignments are deliberately not mentions — writing a
// state proves nothing about handling it.
func mentionValues(pass *analysis.Pass, root *types.Func, mt *types.Named) map[int64]bool {
	out := map[int64]bool{}
	cg := pass.CallGraph()
	fns := []*types.Func{root}
	for fn := range cg.Reachable(root, 0, nil) {
		fns = append(fns, fn)
	}
	addConst := func(e ast.Expr) {
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			if v, ok := constant.Int64Val(tv.Value); ok {
				out[v] = true
			}
		}
	}
	for _, fn := range fns {
		decl := cg.DeclOf(fn)
		if decl == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil || !identicalNamed(pass.TypesInfo.TypeOf(n.Tag), mt) {
					return true
				}
				for _, stmt := range n.Body.List {
					if cc, ok := stmt.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							addConst(e)
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if identicalNamed(pass.TypesInfo.TypeOf(n.X), mt) || identicalNamed(pass.TypesInfo.TypeOf(n.Y), mt) {
					addConst(n.X)
					addConst(n.Y)
				}
			}
			return true
		})
	}
	return out
}

func identicalNamed(t types.Type, mt *types.Named) bool {
	named, ok := t.(*types.Named)
	return ok && types.Identical(named, mt)
}

// findDispatch resolves "Func" or "Recv.Method" to a declaration in
// this package.
func findDispatch(pass *analysis.Pass, name string) (*ast.FuncDecl, *types.Func) {
	recv, method, isMethod := strings.Cut(name, ".")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isMethod {
				if fd.Recv == nil || fd.Name.Name != method || receiverTypeName(fd) != recv {
					continue
				}
			} else if fd.Recv != nil || fd.Name.Name != name {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				return fd, fn
			}
		}
	}
	return nil, nil
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// enumOf builds the declared-constant universe of a named uint8 enum,
// excluding Num*/num* count sentinels.
func enumOf(t types.Type) (enum, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return enum{}, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Uint8 {
		return enum{}, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return enum{}, false
	}
	e := enum{typ: named, names: map[int64]string{}}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num") {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		if _, exists := e.names[v]; !exists {
			e.names[v] = name
			e.values = append(e.values, v)
		}
	}
	if len(e.values) < 2 {
		return enum{}, false
	}
	sort.Slice(e.values, func(i, j int) bool { return e.values[i] < e.values[j] })
	return e, true
}

// drop removes a value from the enum universe (directive excludes).
func (e *enum) drop(v int64) {
	delete(e.names, v)
	for i, ev := range e.values {
		if ev == v {
			e.values = append(e.values[:i], e.values[i+1:]...)
			return
		}
	}
}
