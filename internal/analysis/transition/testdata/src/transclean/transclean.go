// Package transclean is a fully-consistent mini protocol: its spec
// table and dispatch switch agree exactly, so the transition analyzer
// must report nothing.
package transclean

type state uint8

const (
	stA state = iota
	stB
)

type msg uint8

const (
	mGo msg = iota
	mStop
)

type disp uint8

const (
	dOK disp = iota
	dNo
)

type row struct {
	s state
	m msg
	d disp
}

type Ctl struct {
	st state
	n  int
}

func (c *Ctl) Deliver(m msg) {
	switch m {
	case mGo:
		if c.st == stA {
			c.n++
		}
	case mStop:
		if c.st == stB {
			c.n--
		}
	default:
		panic("unhandled")
	}
}

//cosmosvet:transitions ctl dispatch=Ctl.Deliver reject=dNo
var table = []row{
	{stA, mGo, dOK},
	{stB, mGo, dNo},
	{stA, mStop, dNo},
	{stB, mStop, dOK},
}
