// Package trans exercises every transition-analyzer finding: spec
// holes, unhandled live pairs, dead rows, handled-but-undeclared
// messages, cross-table totality, and the state-mention rule.
package trans

type state uint8

const (
	stIdle state = iota
	stBusy
	stWait
	numStates // count sentinel, exempt
)

type msg uint8

const (
	msgNone msg = iota // excluded by the directives
	msgGet
	msgPut
	msgAck
	msgNew // handled by Dir.Deliver but declared in no table
)

type disp uint8

const (
	dispOK disp = iota
	dispQueue
	dispReject
)

// row is (state, message, disposition).
type row struct {
	s state
	m msg
	d disp
}

// Dir's dispatch handles msgGet, msgAck, and msgNew; msgPut has no
// case. stWait is never compared or switched on anywhere.
type Dir struct {
	st state
	q  int
}

func (d *Dir) Deliver(m msg) {
	switch m {
	case msgGet:
		if d.st == stBusy {
			d.q++
			return
		}
		d.handle()
	case msgAck: // want `dir dispatch Dir.Deliver handles msgAck but every declared row rejects it`
		d.resolve()
	case msgNew: // want `dir dispatch Dir.Deliver handles msgNew but the spec table declares no transitions for it`
		d.q = 0
	default:
		panic("unhandled")
	}
}

func (d *Dir) handle() {
	if d.st == stIdle {
		d.q = 0
	}
}

func (d *Dir) resolve() { d.q-- }

//cosmosvet:transitions dir dispatch=Dir.Deliver reject=dispReject exclude=msgNone
var dirTable = []row{ // want `spec hole: no disposition declared for \(stWait, msgPut\) in the dir table` `message type msgNew is declared in no transition table` `state stWait has live rows in the dir table but dispatch Dir.Deliver never distinguishes it`
	{stIdle, msgGet, dispOK},
	{stBusy, msgGet, dispQueue},
	{stWait, msgGet, dispOK},
	{stIdle, msgGet, dispOK}, // want `dead spec row: duplicate disposition for \(stIdle, msgGet\)`
	{stIdle, msg(9), dispOK}, // want `dead spec row: message value 9 matches no declared msg constant`
	{stIdle, msgPut, dispOK}, // want `unhandled live pair \(stIdle, msgPut\): dir dispatch Dir.Deliver has no case for msgPut`
	//cosmosvet:allow transition queued msgPut row kept unhandled to prove the escape hatch works
	{stBusy, msgPut, dispQueue},
	{stIdle, msgAck, dispReject},
	{stBusy, msgAck, dispReject},
	{stWait, msgAck, dispReject},
}

// Cache distinguishes stIdle but only *assigns* stBusy — writing a
// state is not handling it, so stBusy trips the mention rule.
type Cache struct{ st state }

func (c *Cache) Deliver(m msg) {
	switch m {
	case msgPut:
		if c.st == stIdle {
			c.st = stBusy
		}
	default:
		panic("unhandled")
	}
}

//cosmosvet:transitions cache dispatch=Cache.Deliver reject=dispReject exclude=msgNone
var cacheTable = []row{ // want `message type msgPut is declared in both the dir and cache tables` `state stBusy has live rows in the cache table but dispatch Cache.Deliver never distinguishes it`
	{stIdle, msgPut, dispOK},
	{stBusy, msgPut, dispOK},
	{stWait, msgPut, dispReject},
}
