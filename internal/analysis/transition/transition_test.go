package transition_test

import (
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis/analysistest"
	"github.com/cosmos-coherence/cosmos/internal/analysis/transition"
)

// TestTransition pins every finding class against the trans fixture:
// deleting a dispatch case, declaring a pair the code cannot reach,
// duplicating or orphaning rows, and states the code never looks at.
func TestTransition(t *testing.T) {
	analysistest.Run(t, transition.Analyzer, "testdata/src/trans")
}

// TestTransitionClean requires silence on a consistent protocol.
func TestTransitionClean(t *testing.T) {
	analysistest.Run(t, transition.Analyzer, "testdata/src/transclean")
}
