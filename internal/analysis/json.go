package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// JSONDiagnostic is the machine-readable form of a finding, written by
// `cosmosvet -json` and consumed by the CI ratchet. File paths are
// stored relative to the module root whenever possible so a baseline
// committed from one checkout compares cleanly in another.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional go-vet form.
func (d JSONDiagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// ToJSON converts diagnostics to their serializable form, relativizing
// file paths against baseDir (typically the working directory cosmosvet
// ran in). Paths outside baseDir stay absolute.
func ToJSON(diags []Diagnostic, baseDir string) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, file); err == nil && filepath.IsLocal(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// EncodeJSON writes diagnostics as a JSON array (never null: an empty
// run encodes as [] so downstream tooling can always range over it).
func EncodeJSON(w io.Writer, diags []JSONDiagnostic) error {
	if diags == nil {
		diags = []JSONDiagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// DecodeJSON reads a diagnostics array written by EncodeJSON.
func DecodeJSON(r io.Reader) ([]JSONDiagnostic, error) {
	var diags []JSONDiagnostic
	dec := json.NewDecoder(r)
	if err := dec.Decode(&diags); err != nil {
		return nil, fmt.Errorf("analysis: decoding diagnostics: %w", err)
	}
	return diags, nil
}

// ratchetKey identifies a finding for baseline comparison. Line and
// column are deliberately excluded: unrelated edits shift findings
// around a file, and the ratchet must not fail CI because a baselined
// finding moved ten lines down.
type ratchetKey struct {
	Analyzer string
	File     string
	Message  string
}

// Ratchet compares current findings against a committed baseline and
// returns the ones not covered by it — the findings that are *new*.
// Comparison is by (analyzer, file, message) multiset: each baseline
// entry forgives one matching current finding, so duplicating a
// baselined construct still trips the gate. Findings fixed since the
// baseline simply stop matching; shrinking the baseline file is then a
// separate, human-reviewed act (cosmosvet -write-baseline).
func Ratchet(baseline, current []JSONDiagnostic) []JSONDiagnostic {
	credit := make(map[ratchetKey]int, len(baseline))
	for _, d := range baseline {
		credit[ratchetKey{d.Analyzer, d.File, d.Message}]++
	}
	var fresh []JSONDiagnostic
	for _, d := range current {
		k := ratchetKey{d.Analyzer, d.File, d.Message}
		if credit[k] > 0 {
			credit[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	sort.Slice(fresh, func(i, j int) bool {
		a, b := fresh[i], fresh[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
	return fresh
}
