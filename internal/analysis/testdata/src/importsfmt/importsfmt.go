// Package importsfmt exists for the loader's missing-export-data test:
// type-checking it requires fmt's export data, which the test withholds.
package importsfmt

import "fmt"

// Hello greets, pulling in fmt.
func Hello(name string) string {
	return fmt.Sprintf("hello, %s", name)
}
