// Package allowcheck is the framework's own fixture for the
// //cosmosvet:allow suppression protocol: a well-formed allow that
// suppresses a finding, a reasonless allow, a bare allow, and an allow
// aimed at an analyzer that is not running. Loaded only by run_test.go,
// which pairs it with a synthetic analyzer that flags every function
// named "target".
package allowcheck

//cosmosvet:allow
func bareAllow() {}

//cosmosvet:allow testcheck
func reasonlessAllow() {}

//cosmosvet:allow testcheck fixture proves suppression works
func target() {}

func target2() {}

//cosmosvet:allow othercheck aimed at an analyzer that is not running
func unrelated() {}
