// Package badparse is deliberately unparseable: the loader's parse
// error path test feeds it to buildPackages directly. Wildcard
// patterns never match testdata, so the go tool itself never sees it.
package badparse

func broken( {
