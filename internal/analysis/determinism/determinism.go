// Package determinism implements the cosmosvet analyzer that keeps
// wall-clock time, unseeded randomness, and map-iteration order out of
// the simulation core.
//
// The reproduction's headline claim — same seed, byte-identical
// message streams, byte-identical predictor accuracies — holds only if
// nothing in internal/{sim,machine,stache,network,reliable,faults,
// workload} consults a source of nondeterminism. Three leak classes
// are flagged:
//
//  1. Wall-clock reads: time.Now, time.Since, time.Until. Simulated
//     time comes from sim.Engine.Now, never from the host clock.
//  2. The global math/rand source (rand.Intn et al.), which Go seeds
//     randomly at process start. Seeded *rand.Rand values and the
//     repository's own splitmix64-style hashes are fine.
//  3. Ranging over a map when the loop body performs an
//     order-sensitive action: sending or delivering messages,
//     scheduling events, writing output, or appending to a slice that
//     is not subsequently sorted. Go randomizes map iteration order
//     per run, so any of these lets map order leak into the simulated
//     machine's behavior or into reports.
//
// Suppress a deliberate exception with
// //cosmosvet:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, unseeded randomness, and order-sensitive " +
		"map iteration in the simulation core",
	Run: run,
}

// seededConstructors are the math/rand package-level functions that
// build explicitly seeded generators and are therefore allowed.
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// sinkMethods are method names whose invocation inside a map-range
// body makes iteration order observable: message injection and
// delivery, event scheduling, and stream output.
var sinkMethods = map[string]string{
	"Send":        "sends a message",
	"SendPacket":  "sends a packet",
	"Deliver":     "delivers a message",
	"At":          "schedules an event",
	"After":       "schedules an event",
	"Access":      "issues a memory access",
	"Write":       "writes output",
	"WriteString": "writes output",
	"WriteByte":   "writes output",
	"WriteRune":   "writes output",
	"Printf":      "writes output",
	"Fprintf":     "writes output",
}

// fmtPrinters are fmt package-level output functions (Sprint* excluded:
// formatting to a string has no ordering side effect by itself).
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InSimulationCore(pass.ModulePath, pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		checkCalls(pass, f)
		checkMapRanges(pass, f)
	}
	return nil
}

// checkCalls flags wall-clock reads and global-source randomness.
func checkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(),
					"wall-clock read time.%s in the simulation core; use the sim.Engine clock so runs stay seed-reproducible", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"rand.%s uses the process-global random source, which is seeded unpredictably; draw from an explicitly seeded *rand.Rand or a keyed hash", fn.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags map iteration whose body performs an
// order-sensitive action.
func checkMapRanges(pass *analysis.Pass, f *ast.File) {
	// Walk per top-level function so "sorted later in this function"
	// can be resolved for append targets.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkRangeBody(pass, fd.Body, rng)
			return true
		})
	}
}

// checkRangeBody inspects one map-range loop for order-sensitive
// sinks.
func checkRangeBody(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what, name, ok := sinkCall(pass, n); ok {
				pass.Reportf(rng.For,
					"map iteration order reaches %s (%s); iterate a sorted key slice instead", name, what)
			}
		case *ast.AssignStmt:
			checkAppend(pass, funcBody, rng, n)
		}
		return true
	})
}

// sinkCall reports whether call is an order-sensitive sink, returning
// a description and the callee name.
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) (what, name string, ok bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtPrinters[fn.Name()] {
		return "writes output", "fmt." + fn.Name(), true
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		if what, isSink := sinkMethods[fn.Name()]; isSink {
			return what, fn.Name(), true
		}
	}
	return "", "", false
}

// checkAppend flags `outer = append(outer, ...)` inside a map range
// when outer is declared outside the loop and never sorted afterwards
// in the same function — the collect-then-sort idiom is the sanctioned
// fix and stays silent.
func checkAppend(pass *analysis.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		ident, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(ident)
		if obj == nil {
			continue
		}
		// Declared inside the loop: each iteration gets a fresh slice,
		// order cannot accumulate.
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			continue
		}
		if sortedAfter(pass, funcBody, rng.End(), obj) {
			continue
		}
		pass.Reportf(rng.For,
			"map iteration appends to %s in nondeterministic order and %s is never sorted afterwards; sort it or iterate sorted keys", obj.Name(), obj.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort or slices
// ordering function after pos within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= pos {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves the called function or method, or nil for
// builtins, type conversions, and dynamic calls through variables.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
