// Package det is the determinism analyzer's positive fixture: every
// construct the analyzer must flag, next to the sanctioned
// alternatives it must stay silent on. Loaded only by analysistest;
// wildcard builds skip testdata.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type msg struct{ addr uint64 }

type wire struct{ sent []msg }

func (w *wire) Send(m msg)               { w.sent = append(w.sent, m) }
func (w *wire) Deliver(m msg)            {}
func (w *wire) After(d uint64, f func()) {}

func wallClock() (time.Time, time.Duration) {
	now := time.Now()    // want `wall-clock read time\.Now`
	d := time.Since(now) // want `wall-clock read time\.Since`
	_ = time.Until(now)  // want `wall-clock read time\.Until`
	_ = now.Add(d)       // methods on time values are fine
	return now, d
}

func globalRand() int {
	n := rand.Intn(10)                 // want `rand\.Intn uses the process-global random source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle uses the process-global random source`
	r := rand.New(rand.NewSource(42))  // explicitly seeded: allowed
	return r.Intn(10)
}

func allowedClock() time.Time {
	//cosmosvet:allow determinism fixture exercises the escape hatch
	return time.Now()
}

func sendInMapOrder(w *wire, pending map[uint64]msg) {
	for _, m := range pending { // want `map iteration order reaches Send`
		w.Send(m)
	}
	for a := range pending { // want `map iteration order reaches Deliver`
		w.Deliver(msg{addr: a})
	}
	for a := range pending { // want `map iteration order reaches After`
		w.After(a, func() {})
	}
}

func printInMapOrder(counts map[string]int) {
	for k, v := range counts { // want `map iteration order reaches fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func appendUnsorted(m map[uint64]msg) []msg {
	var out []msg
	for _, v := range m { // want `map iteration appends to out in nondeterministic order`
		out = append(out, v)
	}
	return out
}

func appendThenSort(m map[uint64]msg) []msg {
	var out []msg
	for _, v := range m { // collect-then-sort: the sanctioned idiom
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

func commutativeLoop(m map[uint64]int) int {
	total := 0
	for _, v := range m { // order-insensitive reduction: fine
		total += v
	}
	return total
}

func freshSlicePerIteration(m map[uint64]int) {
	for k := range m { // slice declared inside the loop: fine
		var scratch []uint64
		scratch = append(scratch, k)
		_ = scratch
	}
}
