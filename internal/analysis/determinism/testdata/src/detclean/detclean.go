// Package detclean is the determinism analyzer's clean fixture: code
// that schedules, sends, and reports without consulting any
// nondeterministic source. The analyzer must stay silent here.
package detclean

import (
	"fmt"
	"math/rand"
	"sort"
)

type event struct {
	at uint64
	fn func()
}

type engine struct {
	now   uint64
	queue []event
}

func (e *engine) At(at uint64, fn func()) { e.queue = append(e.queue, event{at, fn}) }

func seededDraws(seed int64, n int) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

func report(counts map[string]uint64) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d\n", k, counts[k])
	}
	return s
}
