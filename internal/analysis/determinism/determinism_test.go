package determinism_test

import (
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis/analysistest"
	"github.com/cosmos-coherence/cosmos/internal/analysis/determinism"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/det")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/detclean")
}
