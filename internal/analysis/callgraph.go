package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph holds the static, same-package call-graph facts for one
// pass: which declared function each *types.Func maps to, and which
// same-package declared functions each of them calls directly. Calls
// through interfaces, function values, and other packages are not
// edges — they are trust boundaries the analyzers handle at the call
// site instead of by traversal.
//
// The graph is built lazily by Pass.CallGraph and memoized, so the
// cost is paid once per (analyzer, package) and only when asked for.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func][]*types.Func
}

// CallGraph returns the package's call graph, building it on first use.
func (p *Pass) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

func buildCallGraph(p *Pass) *CallGraph {
	g := &CallGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
		}
	}
	for fn, fd := range g.decls {
		seen := make(map[*types.Func]bool)
		var callees []*types.Func
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(p.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, declared := g.decls[callee]; !declared {
				return true
			}
			seen[callee] = true
			callees = append(callees, callee)
			return true
		})
		// Deterministic edge order: by callee position, so every walk
		// (and therefore every diagnostic chain) is stable across runs.
		sort.Slice(callees, func(i, j int) bool {
			return g.decls[callees[i]].Pos() < g.decls[callees[j]].Pos()
		})
		g.callees[fn] = callees
	}
	return g
}

// DeclOf returns the declaration of a package function, or nil when fn
// is not declared (with a body) in this package.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	return g.decls[fn]
}

// CalleesOf returns the same-package functions fn calls directly, in
// source order. The returned slice is shared; callers must not mutate.
func (g *CallGraph) CalleesOf(fn *types.Func) []*types.Func {
	return g.callees[fn]
}

// Reachable walks the graph breadth-first from root and returns, for
// every function reachable within maxDepth call edges (root itself
// excluded), the caller by which it was first discovered. The parent
// chain reconstructs a shortest call path back to root for
// diagnostics. maxDepth <= 0 means unbounded; stop prunes traversal
// below any function it reports true for (the function itself is
// still included).
func (g *CallGraph) Reachable(root *types.Func, maxDepth int, stop func(*types.Func) bool) map[*types.Func]*types.Func {
	parent := make(map[*types.Func]*types.Func)
	type item struct {
		fn    *types.Func
		depth int
	}
	queue := []item{{root, 0}}
	visited := map[*types.Func]bool{root: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxDepth > 0 && cur.depth >= maxDepth {
			continue
		}
		if cur.fn != root && stop != nil && stop(cur.fn) {
			continue
		}
		for _, callee := range g.callees[cur.fn] {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			parent[callee] = cur.fn
			queue = append(queue, item{callee, cur.depth + 1})
		}
	}
	return parent
}

// PathTo renders the call chain root → ... → fn recorded by Reachable
// as display names. It returns nil if fn was not reached.
func PathTo(parent map[*types.Func]*types.Func, root, fn *types.Func) []string {
	if fn == root {
		return []string{FuncDisplayName(root)}
	}
	var rev []*types.Func
	for cur := fn; cur != root; {
		rev = append(rev, cur)
		p, ok := parent[cur]
		if !ok {
			return nil
		}
		cur = p
	}
	names := []string{FuncDisplayName(root)}
	for i := len(rev) - 1; i >= 0; i-- {
		names = append(names, FuncDisplayName(rev[i]))
	}
	return names
}

// StaticCallee resolves a call expression to the package-level
// function or method it statically invokes, or nil for builtins,
// conversions, function values, and interface-method calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method value through an interface has no static callee.
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// FuncDisplayName renders a function for diagnostics: "Name" for
// plain functions, "Recv.Name" for methods.
func FuncDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
