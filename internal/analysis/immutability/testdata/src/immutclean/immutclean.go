// Package immutclean is the immutability analyzer's clean fixture:
// messages are built, sent, and never touched again. The analyzer
// must stay silent here.
package immutclean

type msg struct {
	addr uint64
	hops int
}

type link struct{ queue []msg }

func (l *link) Send(m msg) { l.queue = append(l.queue, m) }

func request(l *link, addr uint64) {
	m := msg{addr: addr}
	l.Send(m)
}

func forward(l *link, in msg) {
	out := in
	out.hops++
	l.Send(out)
}

func burst(l *link, addrs []uint64) {
	for _, a := range addrs {
		l.Send(msg{addr: a})
	}
}
