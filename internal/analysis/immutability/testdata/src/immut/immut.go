// Package immut is the immutability analyzer's positive fixture:
// messages mutated after being handed to a send path, next to the
// legitimate patterns that must stay silent. Loaded only by
// analysistest.
package immut

type msg struct {
	addr uint64
	kind uint8
}

type envelope struct {
	m msg
}

type link struct{ queue []msg }

func (l *link) Send(m msg)       { l.queue = append(l.queue, m) }
func (l *link) SendPacket(m msg) { l.queue = append(l.queue, m) }

func fieldWriteAfterSend(l *link) {
	m := msg{addr: 1}
	l.Send(m)
	m.addr = 2 // want `m\.addr is written after m was handed to Send`
}

func reassignAfterSend(l *link) {
	m := msg{addr: 1}
	l.SendPacket(m)
	m = msg{addr: 2} // want `m is written after m was handed to SendPacket`
	_ = m
}

func incDecAfterSend(l *link) {
	m := msg{addr: 1}
	l.Send(m)
	m.kind++ // want `m\.kind is written after m was handed to Send`
}

func fieldSelectionSend(l *link, e envelope) {
	l.Send(e.m)
	e.m.addr = 9 // want `e\.m\.addr is written after e\.m was handed to Send`
}

func wholeWriteAfterFieldSend(l *link, e envelope) {
	l.Send(e.m)
	e = envelope{} // want `e is written after e\.m was handed to Send`
	_ = e
}

func mutateBeforeSend(l *link) {
	m := msg{}
	m.addr = 7
	l.Send(m)
}

func freshVariablePerMessage(l *link) {
	first := msg{addr: 1}
	l.Send(first)
	second := msg{addr: 2}
	l.Send(second)
}

func allowedReuse(l *link) {
	m := msg{addr: 1}
	l.Send(m)
	//cosmosvet:allow immutability fixture exercises the escape hatch
	m.addr = 2
}
