// Package immutability implements the cosmosvet analyzer that treats a
// message handed to a send path as frozen.
//
// The network and the reliable transport retain sent messages: the
// network schedules delivery closures over them, and the transport
// buffers them for retransmission. A sender that mutates a message
// variable after passing it to Send/SendPacket is therefore writing to
// state the interconnect may still read — exactly the forwarded-data-
// racing-post-ack-writes bug class the PR-1 fault work had to chase.
// Because coherence.Msg is currently a small value struct the race is
// latent rather than live, but the invariant keeps it that way as the
// message grows reference fields (payload slices, ack lists).
//
// Within the simulation core, for every call to a method named Send or
// SendPacket whose argument is a named-struct variable (or a field
// selection like o.msg), any later write in the same function to that
// variable or anything reachable through it is flagged:
//
//	nw.Send(msg)
//	msg.Addr = 0        // flagged
//	msg.Grant++         // flagged
//
// Reinitializing the whole variable for an unrelated next message is
// legitimate in principle but indistinguishable from a post-send
// mutation; write to a fresh variable, or suppress a true reuse with
// //cosmosvet:allow immutability <reason>.
package immutability

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cosmos-coherence/cosmos/internal/analysis"
)

// Analyzer is the message-immutability check.
var Analyzer = &analysis.Analyzer{
	Name: "immutability",
	Doc:  "forbid mutating a message after it was handed to a send path",
	Run:  run,
}

// sendNames are the send-path entry points: stache.Sender.Send,
// network.Network.Send/SendPacket, reliable.Transport.Send.
var sendNames = map[string]bool{"Send": true, "SendPacket": true}

func run(pass *analysis.Pass) error {
	if !analysis.InSimulationCore(pass.ModulePath, pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// sentValue tracks one message argument observed flowing into a send
// call: the chain of objects naming it (msg -> [msg], o.msg -> [o,
// msg-field]) and where the send happened.
type sentValue struct {
	chain    []types.Object
	display  string
	sendName string
	sendEnd  int
}

// checkFunc finds send calls and post-send writes within one function.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var sent []sentValue
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sendNames[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return true
		}
		arg := call.Args[0]
		if !isNamedStruct(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
		if chain, display, ok := selectorChain(pass, arg); ok {
			sent = append(sent, sentValue{
				chain:    chain,
				display:  display,
				sendName: sel.Sel.Name,
				sendEnd:  int(call.End()),
			})
		}
		return true
	})
	if len(sent) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, sent, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, sent, n.X, n.Pos())
		}
		return true
	})
}

// checkWrite flags lhs if it writes to (or through) a value already
// handed to a send path earlier in the function.
func checkWrite(pass *analysis.Pass, sent []sentValue, lhs ast.Expr, pos token.Pos) {
	chain, display, ok := selectorChain(pass, lhs)
	if !ok {
		return
	}
	for _, sv := range sent {
		if int(pos) <= sv.sendEnd {
			continue
		}
		if chainHasPrefix(chain, sv.chain) {
			pass.Reportf(pos,
				"%s is written after %s was handed to %s; the interconnect retains sent messages for delivery and retransmission — build a fresh message instead",
				display, sv.display, sv.sendName)
			return
		}
	}
}

// selectorChain resolves an expression of the form ident or
// ident.sel1.sel2... into its object chain. Anything else (index
// expressions, calls, pointers derefs) is not tracked.
func selectorChain(pass *analysis.Pass, e ast.Expr) (chain []types.Object, display string, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if _, isVar := obj.(*types.Var); !isVar {
			return nil, "", false
		}
		return []types.Object{obj}, e.Name, true
	case *ast.SelectorExpr:
		base, baseName, ok := selectorChain(pass, e.X)
		if !ok {
			return nil, "", false
		}
		obj := pass.TypesInfo.ObjectOf(e.Sel)
		if obj == nil {
			return nil, "", false
		}
		return append(base, obj), baseName + "." + e.Sel.Name, true
	}
	return nil, "", false
}

// chainHasPrefix reports whether write targets the sent value or a
// field reachable through it: the shorter chain must prefix the
// longer in either direction (writing msg after sending msg.Field
// also invalidates the sent field).
func chainHasPrefix(write, sent []types.Object) bool {
	n := len(write)
	if len(sent) < n {
		n = len(sent)
	}
	for i := 0; i < n; i++ {
		if write[i] != sent[i] {
			return false
		}
	}
	return true
}

// isNamedStruct reports whether t is a named struct type (the shape of
// coherence.Msg and network.Packet).
func isNamedStruct(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, ok = named.Underlying().(*types.Struct)
	return ok
}
