package immutability_test

import (
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/analysis/analysistest"
	"github.com/cosmos-coherence/cosmos/internal/analysis/immutability"
)

func TestFlagged(t *testing.T) {
	analysistest.Run(t, immutability.Analyzer, "testdata/src/immut")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, immutability.Analyzer, "testdata/src/immutclean")
}
