package analysis

import "strings"

// simCorePackages are the module packages whose behavior feeds the
// deterministic simulation: event scheduling, protocol transitions,
// message delivery, fault decisions, and workload generation. The
// determinism and message-immutability analyzers apply only here —
// offline evaluation and report rendering may use maps and clocks
// freely as long as nothing order-dependent leaks into output (the
// exhaustive-switch analyzer still covers the whole module).
var simCorePackages = []string{
	"internal/sim",
	"internal/machine",
	"internal/stache",
	"internal/network",
	// Routing is pure geometry, but its hop lists decide delivery
	// times: any nondeterminism here would skew every structured-fabric
	// trace.
	"internal/topology",
	"internal/reliable",
	"internal/faults",
	"internal/workload",
	"internal/invariant",
	"internal/chaos",
	// The speculation governor's gate decisions steer protocol actions
	// mid-simulation; a map iteration or clock read in its state machine
	// would desynchronize otherwise-identical runs.
	"internal/governor",
	"internal/speculate",
	// The online prediction service runs inside the engine: its queue,
	// shed, and checkpoint decisions must replay identically from a
	// seed for the kill-and-restore byte-equivalence guarantee to hold.
	"internal/serve",
	// The worker pool reassembles parallel results into deterministic
	// order; wall-clock or global-rand creep here would let scheduling
	// leak into every experiment that fans out over it.
	"internal/parallel",
	// Trace capture/encoding, the on-disk trace cache, and slot-sharded
	// evaluation all promise byte-identical results across runs, pool
	// widths, and cold/warm caches — the same determinism contract the
	// simulation core carries, so the same analyzers apply.
	"internal/trace",
	"internal/tracecache",
	"internal/stats",
}

// InSimulationCore reports whether the package is part of the
// deterministic simulation core. The analyzer test fixtures under
// internal/analysis/.../testdata are always in scope so they can
// exercise the checks; a testdata directory anywhere else in the
// module (or in another module entirely) says nothing about
// determinism requirements and is judged by the package list alone.
func InSimulationCore(modulePath, pkgPath string) bool {
	if modulePath != "" &&
		strings.HasPrefix(pkgPath, modulePath+"/internal/analysis/") &&
		strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, p := range simCorePackages {
		if pkgPath == modulePath+"/"+p {
			return true
		}
	}
	return false
}
