package faults

import (
	"flag"
	"math"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
)

func TestZeroPlanDisabled(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	in, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("disabled plan built a non-nil injector")
	}
	// Seed alone perturbs nothing.
	p.Seed = 99
	if p.Enabled() {
		t.Fatal("seed-only plan reports enabled")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"full", Plan{DropProb: 0.5, DupProb: 0.5, JitterNs: 100}, true},
		{"drop too high", Plan{DropProb: 1.5}, false},
		{"drop negative", Plan{DropProb: -0.1}, false},
		{"dup NaN", Plan{DupProb: math.NaN()}, false},
		{"empty blackout", Plan{Blackouts: []Blackout{{FromNs: 10, UntilNs: 10}}}, false},
		{"forever blackout", Plan{Blackouts: []Blackout{{Src: 1, Dst: 2}}}, true},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, DropProb: 0.1, DupProb: 0.05, JitterNs: 200}
	a, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 10_000; seq++ {
		da := a.Decide(3, 7, seq, seq*13)
		db := b.Decide(3, 7, seq, seq*13)
		if da != db {
			t.Fatalf("seq %d: decisions differ: %+v vs %+v", seq, da, db)
		}
	}
}

func TestDecideRates(t *testing.T) {
	plan := Plan{Seed: 7, DropProb: 0.10, DupProb: 0.05, JitterNs: 100}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	var drops, dups int
	var jitterSum uint64
	for seq := uint64(0); seq < n; seq++ {
		d := in.Decide(0, 1, seq, 0)
		if d.Drop {
			drops++
		}
		if d.Duplicate {
			dups++
		}
		if d.JitterNs > plan.JitterNs {
			t.Fatalf("jitter %d exceeds max %d", d.JitterNs, plan.JitterNs)
		}
		jitterSum += d.JitterNs
	}
	if rate := float64(drops) / n; rate < 0.08 || rate > 0.12 {
		t.Errorf("drop rate %.4f far from 0.10", rate)
	}
	if rate := float64(dups) / n; rate < 0.035 || rate > 0.065 {
		t.Errorf("dup rate %.4f far from 0.05", rate)
	}
	if mean := float64(jitterSum) / n; mean < 40 || mean > 60 {
		t.Errorf("mean jitter %.1f far from 50", mean)
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, _ := NewInjector(Plan{Seed: 1, DropProb: 0.5})
	b, _ := NewInjector(Plan{Seed: 2, DropProb: 0.5})
	same := 0
	const n = 10_000
	for seq := uint64(0); seq < n; seq++ {
		if a.Decide(0, 1, seq, 0).Drop == b.Decide(0, 1, seq, 0).Drop {
			same++
		}
	}
	if same > n*6/10 || same < n*4/10 {
		t.Errorf("different seeds agree on %d/%d drops; streams look correlated", same, n)
	}
}

func TestLinksIndependent(t *testing.T) {
	in, _ := NewInjector(Plan{Seed: 5, DropProb: 0.5})
	same := 0
	const n = 10_000
	for seq := uint64(0); seq < n; seq++ {
		if in.Decide(0, 1, seq, 0).Drop == in.Decide(1, 0, seq, 0).Drop {
			same++
		}
	}
	if same > n*6/10 || same < n*4/10 {
		t.Errorf("links (0,1) and (1,0) agree on %d/%d drops; streams look correlated", same, n)
	}
}

func TestBlackout(t *testing.T) {
	plan := Plan{Blackouts: []Blackout{
		{Src: 1, Dst: 2, FromNs: 100, UntilNs: 200},
		{Src: -1, Dst: 3}, // everything into node 3, forever
	}}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src, dst int16
		now      uint64
		drop     bool
	}{
		{1, 2, 150, true},   // inside the window
		{1, 2, 99, false},   // before
		{1, 2, 200, false},  // at the exclusive end
		{2, 1, 150, false},  // reverse link unaffected
		{0, 3, 0, true},     // wildcard src
		{5, 3, 1 << 40, true},
		{3, 0, 150, false},
	}
	for _, c := range cases {
		d := in.Decide(coherence.NodeID(c.src), coherence.NodeID(c.dst), 0, c.now)
		if d.Drop != c.drop {
			t.Errorf("Decide(%d->%d @%d): drop=%v, want %v", c.src, c.dst, c.now, d.Drop, c.drop)
		}
	}
}

func TestFlagsPlan(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-fault-drop=0.02", "-fault-dup=0.01", "-fault-jitter=150", "-fault-seed=9"}); err != nil {
		t.Fatal(err)
	}
	got := f.Plan()
	want := Plan{Seed: 9, DropProb: 0.02, DupProb: 0.01, JitterNs: 150}
	if got.Seed != want.Seed || got.DropProb != want.DropProb || got.DupProb != want.DupProb || got.JitterNs != want.JitterNs {
		t.Errorf("Plan() = %+v, want %+v", got, want)
	}
	if !got.Enabled() {
		t.Error("parsed plan should be enabled")
	}
}
