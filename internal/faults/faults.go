// Package faults injects deterministic message perturbations — drops,
// duplications, latency jitter, and timed link blackouts — into the
// simulated interconnect's delivery path.
//
// Real interconnects are not the perfectly reliable, perfectly FIFO
// wire the seed simulator models; prediction-based coherence schemes
// must tolerate the message streams a lossy network produces (the
// paper's Section 6 latency study probes timing sensitivity, but never
// loss). This package supplies the fault model; the reliable transport
// (internal/reliable) restores exactly-once in-order delivery on top
// of it, so the Stache protocol runs unchanged.
//
// Determinism is the load-bearing property: every fault decision is a
// pure function of (plan seed, source, destination, wire sequence
// number) — never of wall-clock time or a shared PRNG whose state
// depends on call order. Two runs with the same seed therefore inject
// byte-identical fault streams, which is what makes fault-injected
// trace hashes reproducible and regressions bisectable.
package faults

import (
	"flag"
	"fmt"
	"math"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
)

// Blackout is a timed total outage of one link: every packet injected
// on the link during [FromNs, UntilNs) is dropped, regardless of the
// plan's probabilistic settings. A negative Src or Dst acts as a
// wildcard matching every node.
type Blackout struct {
	Src, Dst int
	// FromNs and UntilNs bound the outage in simulated nanoseconds;
	// UntilNs == 0 means "forever".
	FromNs, UntilNs uint64
}

// covers reports whether the blackout drops a packet injected on
// (src,dst) at time nowNs.
func (b Blackout) covers(src, dst coherence.NodeID, nowNs uint64) bool {
	if b.Src >= 0 && coherence.NodeID(b.Src) != src {
		return false
	}
	if b.Dst >= 0 && coherence.NodeID(b.Dst) != dst {
		return false
	}
	if nowNs < b.FromNs {
		return false
	}
	return b.UntilNs == 0 || nowNs < b.UntilNs
}

// Plan describes what the injector does to each packet. The zero value
// is a perfectly reliable wire (Enabled reports false) and leaves the
// network's behavior bit-identical to a build without fault injection.
type Plan struct {
	// Seed keys every fault decision. Two runs with equal plans see
	// identical fault streams.
	Seed uint64
	// DropProb is the per-packet probability that a packet vanishes on
	// the wire. Applied independently per packet (including transport
	// acks and retransmissions, which receive fresh wire sequence
	// numbers and hence fresh draws).
	DropProb float64
	// DupProb is the per-packet probability that a second copy of the
	// packet is delivered, with its own jitter draw.
	DupProb float64
	// JitterNs adds a uniform [0, JitterNs] delay to each delivery.
	// Jitter can reorder packets on a link; the reliable transport
	// restores per-link FIFO before the protocol sees them.
	JitterNs uint64
	// Blackouts lists timed total outages of individual links.
	Blackouts []Blackout
}

// Enabled reports whether the plan perturbs anything. A disabled plan
// keeps the network on its exact seed-identical delivery path and
// keeps the reliable transport out of the message flow entirely.
func (p Plan) Enabled() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.JitterNs > 0 || len(p.Blackouts) > 0
}

// Validate checks the plan's internal consistency.
func (p Plan) Validate() error {
	switch {
	case math.IsNaN(p.DropProb) || p.DropProb < 0 || p.DropProb > 1:
		return fmt.Errorf("faults: DropProb=%v outside [0,1]", p.DropProb)
	case math.IsNaN(p.DupProb) || p.DupProb < 0 || p.DupProb > 1:
		return fmt.Errorf("faults: DupProb=%v outside [0,1]", p.DupProb)
	}
	for i, b := range p.Blackouts {
		if b.UntilNs != 0 && b.UntilNs <= b.FromNs {
			return fmt.Errorf("faults: blackout %d empty: [%d,%d)", i, b.FromNs, b.UntilNs)
		}
	}
	return nil
}

// Decision is the injector's verdict for one packet.
type Decision struct {
	// Drop means the packet never arrives.
	Drop bool
	// Duplicate means a second copy arrives, delayed by DupJitterNs.
	Duplicate bool
	// JitterNs delays the primary copy.
	JitterNs uint64
	// DupJitterNs delays the duplicate copy (independent draw).
	DupJitterNs uint64
}

// Injector applies a Plan. It is stateless beyond the plan itself, so
// one injector may serve concurrent independent simulations only if
// they never share a network (each network owns its injector).
type Injector struct {
	plan Plan
}

// NewInjector builds an injector for plan, or nil when the plan is
// disabled — callers treat a nil injector as "no faults" and keep the
// untouched delivery path.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Enabled() {
		return nil, nil
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Salts separate the independent random streams drawn per packet.
const (
	saltDrop = iota + 1
	saltDup
	saltJitter
	saltDupJitter
)

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used to derive per-packet randomness from the key material.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// draw returns a uniform value in [0,1) keyed on (seed, salt, src,
// dst, wireSeq). Distinct salts give independent streams for the same
// packet.
func (in *Injector) draw(salt uint64, src, dst coherence.NodeID, wireSeq uint64) float64 {
	h := mix(in.plan.Seed ^ mix(salt))
	h = mix(h ^ (uint64(uint16(src))<<16 | uint64(uint16(dst))))
	h = mix(h ^ wireSeq)
	return float64(h>>11) / float64(1<<53)
}

// jitterDraw returns a uniform delay in [0, JitterNs].
func (in *Injector) jitterDraw(salt uint64, src, dst coherence.NodeID, wireSeq uint64) uint64 {
	if in.plan.JitterNs == 0 {
		return 0
	}
	return uint64(in.draw(salt, src, dst, wireSeq) * float64(in.plan.JitterNs+1))
}

// Decide returns the fault decision for the packet with wire sequence
// number wireSeq injected on link (src,dst) at simulated time nowNs.
// The decision is a pure function of its arguments and the plan.
func (in *Injector) Decide(src, dst coherence.NodeID, wireSeq, nowNs uint64) Decision {
	for _, b := range in.plan.Blackouts {
		if b.covers(src, dst, nowNs) {
			return Decision{Drop: true}
		}
	}
	d := Decision{
		JitterNs: in.jitterDraw(saltJitter, src, dst, wireSeq),
	}
	if in.plan.DropProb > 0 && in.draw(saltDrop, src, dst, wireSeq) < in.plan.DropProb {
		d.Drop = true
		return d
	}
	if in.plan.DupProb > 0 && in.draw(saltDup, src, dst, wireSeq) < in.plan.DupProb {
		d.Duplicate = true
		d.DupJitterNs = in.jitterDraw(saltDupJitter, src, dst, wireSeq)
	}
	return d
}

// Flags holds the standard command-line fault knobs shared by the cmd/
// tools. Register with AddFlags, then call Plan after flag parsing.
type Flags struct {
	drop   *float64
	dup    *float64
	jitter *uint64
	seed   *uint64
}

// AddFlags registers -fault-drop, -fault-dup, -fault-jitter, and
// -fault-seed on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		drop:   fs.Float64("fault-drop", 0, "per-packet drop probability on every link (0 disables)"),
		dup:    fs.Float64("fault-dup", 0, "per-packet duplication probability on every link"),
		jitter: fs.Uint64("fault-jitter", 0, "max per-packet latency jitter in ns"),
		seed:   fs.Uint64("fault-seed", 1, "seed for deterministic fault decisions"),
	}
}

// Plan assembles the parsed flags into a fault plan.
func (f *Flags) Plan() Plan {
	return Plan{
		Seed:     *f.seed,
		DropProb: *f.drop,
		DupProb:  *f.dup,
		JitterNs: *f.jitter,
	}
}
