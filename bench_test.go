// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus micro-benchmarks of the predictor
// itself. Each table benchmark regenerates its table from the shared
// full-scale traces (simulated once per process and memoized) and
// reports the headline numbers as custom metrics, so
// `go test -bench=. -benchmem` both measures the harness and emits the
// reproduced results.
package cosmos_test

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"github.com/cosmos-coherence/cosmos/internal/coherence"
	"github.com/cosmos-coherence/cosmos/internal/core"
	"github.com/cosmos-coherence/cosmos/internal/experiments"
	"github.com/cosmos-coherence/cosmos/internal/faults"
	"github.com/cosmos-coherence/cosmos/internal/governor"
	"github.com/cosmos-coherence/cosmos/internal/machine"
	"github.com/cosmos-coherence/cosmos/internal/serve"
	"github.com/cosmos-coherence/cosmos/internal/sim"
	"github.com/cosmos-coherence/cosmos/internal/speculate"
	"github.com/cosmos-coherence/cosmos/internal/stache"
	"github.com/cosmos-coherence/cosmos/internal/stats"
	"github.com/cosmos-coherence/cosmos/internal/workload"
)

// benchScale resolves the workload scale for the macro benchmarks from
// COSMOS_BENCH_SCALE (small | medium | full), falling back to def.
// The CI bench-smoke step sets small so the suite stays affordable;
// committed BENCH_*.json snapshots use the defaults.
func benchScale(b *testing.B, def workload.Scale) workload.Scale {
	b.Helper()
	name := os.Getenv("COSMOS_BENCH_SCALE")
	if name == "" {
		return def
	}
	sc, ok := experiments.ScaleFor(name)
	if !ok {
		b.Fatalf("COSMOS_BENCH_SCALE=%q: want small | medium | full", name)
	}
	return sc
}

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// fullSuite lazily builds the shared full-scale suite; the first
// benchmark that needs a trace pays its simulation cost exactly once
// per process — or loads it from COSMOS_TRACE_CACHE when set (the CI
// bench-smoke step warms the cache once per job and points every
// benchmark run at it).
func fullSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		cfg.Scale = benchScale(b, workload.ScaleFull)
		cfg.TraceCache = os.Getenv("COSMOS_TRACE_CACHE")
		suite = experiments.NewSuite(cfg)
	})
	return suite
}

// reportGC attaches the garbage collector's share of a benchmark as
// custom metrics: stop-the-world pause accumulated over the timed
// region, amortized per iteration (gc-pause-ns/op), and the live heap
// after the final iteration (heap-live-B). Call it before the loop and
// defer the returned func. cosmos-bench's parser stores any custom
// unit in the snapshot's metrics map, so GC cost is versioned in
// BENCH_*.json next to ns/op and allocs/op.
func reportGC(b *testing.B) func() {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	return func() {
		b.StopTimer()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.PauseTotalNs-before.PauseTotalNs)/float64(b.N), "gc-pause-ns/op")
		b.ReportMetric(float64(after.HeapAlloc), "heap-live-B")
	}
}

// warm materializes all five traces outside the timed region.
func warm(b *testing.B, s *experiments.Suite) {
	b.Helper()
	for _, app := range s.Apps() {
		if _, err := s.Trace(app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table 5 (prediction rates, depths 1-4),
// once over the serial path and once over an 8-worker pool (the two
// must produce identical rows; the regression test pins that — here
// the pool's wall-clock win is what is measured). Reported metrics:
// overall accuracy per benchmark at depth 1.
func BenchmarkTable5(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			s.SetWorkers(bc.workers)
			defer s.SetWorkers(1)
			defer reportGC(b)()
			b.ResetTimer()
			var rows []experiments.Table5Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Table5(s)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range rows {
				if r.Depth == 1 {
					b.ReportMetric(r.Overall, r.App+"_d1_%")
				}
			}
		})
	}
}

// BenchmarkTable6 regenerates Table 6 (noise filters x depth).
func BenchmarkTable6(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	defer reportGC(b)()
	b.ResetTimer()
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table6(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Depth == 1 && r.FilterMax == 1 {
			b.ReportMetric(r.Overall, r.App+"_f1_%")
		}
	}
}

// BenchmarkTable7 regenerates Table 7 (predictor memory overhead).
func BenchmarkTable7(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	b.ResetTimer()
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table7(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Depth == 1 {
			b.ReportMetric(r.Ratio, r.App+"_ratio")
		}
	}
}

// BenchmarkTable8 regenerates Table 8 (dsmc adaptation over run length).
func BenchmarkTable8(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	b.ResetTimer()
	var cells []experiments.Table8Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Table8(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Arc == experiments.Table8Transitions[1] {
			b.ReportMetric(c.HitPct, "gror_to_irwr_hits_%")
			break
		}
	}
}

// BenchmarkFigure5 regenerates the analytic speedup curves.
func BenchmarkFigure5(b *testing.B) {
	var fig *experiments.Figure5
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.RunFigure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	// The paper's headline: substantial speedups at p=0.8.
	b.ReportMetric(fig.FSweeps[0].Points[0].Speedup, "max_speedup_x")
}

// BenchmarkFigure6 regenerates the Figure 6 signature panels (appbt,
// barnes, dsmc).
func BenchmarkFigure6(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"appbt", "barnes", "dsmc"} {
			if _, err := experiments.Figures6and7(s, app, 8); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7 regenerates the Figure 7 signature panels (moldyn,
// unstructured).
func BenchmarkFigure7(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"moldyn", "unstructured"} {
			if _, err := experiments.Figures6and7(s, app, 8); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure8 regenerates the directed-signature detection runs.
func BenchmarkFigure8(b *testing.B) {
	cfg := experiments.DefaultConfig()
	var res *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Migratory.AccuracyWhenPredicting, "migratory_acc_%")
	b.ReportMetric(100*res.DSI.AccuracyWhenPredicting, "dsi_acc_%")
}

// BenchmarkDirectedComparison regenerates the Section 7 comparison.
func BenchmarkDirectedComparison(b *testing.B) {
	s := fullSuite(b)
	warm(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DirectedComparison(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyInsensitivity re-simulates at 40ns and 1us network
// latency (Section 5's robustness claim). Uses the medium scale: each
// iteration simulates all five benchmarks twice.
func BenchmarkLatencyInsensitivity(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale(b, workload.ScaleMedium)
	var rows []experiments.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LatencySweep(cfg, []uint64{40, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) >= 2 {
		b.ReportMetric(rows[0].Overall-rows[len(rows)/2].Overall, "accuracy_delta_pts")
	}
}

// BenchmarkHalfMigratoryAblation re-simulates with the Section 5.1
// protocol optimization on and off (medium scale).
func BenchmarkHalfMigratoryAblation(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Scale = benchScale(b, workload.ScaleMedium)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HalfMigratoryAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAcceleratedProtocol measures the end-to-end Section 4
// integration: migratory workload with and without the RMW action.
func BenchmarkAcceleratedProtocol(b *testing.B) {
	cfg := sim.DefaultConfig()
	geom := coherence.MustGeometry(cfg.CacheBlockBytes, cfg.PageBytes, cfg.Nodes)
	app := func() workload.App {
		return workload.Migratory(cfg.Nodes, workload.NewArena(geom).Alloc(32), 30)
	}
	var cmp *speculate.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = speculate.Accelerate(app, cfg, stache.DefaultOptions(), core.Config{Depth: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cmp.MessageReduction(), "msg_reduction_%")
	b.ReportMetric(100*cmp.TimeReduction(), "time_reduction_%")
}

// BenchmarkRollbackActions measures the ProtocolRollback integration
// end to end: a producer-consumer workload under every Table 2 action
// at once — speculative downgrade and producer push through the
// governor, RMW and self-invalidation ungated — against the base
// protocol. Both runs per iteration, like BenchmarkAcceleratedProtocol.
func BenchmarkRollbackActions(b *testing.B) {
	cfg := sim.DefaultConfig()
	geom := coherence.MustGeometry(cfg.CacheBlockBytes, cfg.PageBytes, cfg.Nodes)
	app := func() workload.App {
		return workload.ProducerConsumer(cfg.Nodes, 1, []int{2, 5}, workload.NewArena(geom).Alloc(32), 30)
	}
	opts := stache.DefaultOptions()
	opts.Speculation = true
	acfg := speculate.AttachConfig{
		Actions:   speculate.AllActions(),
		Predictor: core.Config{Depth: 2},
		Governor:  governor.DefaultConfig(),
	}
	var cmp *speculate.ActionComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = speculate.AccelerateActions(app, cfg, opts, acfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	acc := cmp.Accelerated
	b.ReportMetric(100*cmp.MessageReduction(), "msg_reduction_%")
	b.ReportMetric(100*cmp.TimeReduction(), "time_reduction_%")
	b.ReportMetric(float64(acc.SpecFetches+acc.SpecPushes), "rollback_actions")
}

// BenchmarkPredictorObserve measures raw predictor throughput: one
// Observe (predict + train) per op on a steady periodic stream.
func BenchmarkPredictorObserve(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		b.Run(map[int]string{1: "depth1", 2: "depth2", 4: "depth4"}[depth], func(b *testing.B) {
			p := core.MustNew(core.Config{Depth: depth})
			seq := []coherence.Tuple{
				{Sender: 1, Type: coherence.GetRWReq},
				{Sender: 2, Type: coherence.InvalROResp},
				{Sender: 2, Type: coherence.GetROReq},
				{Sender: 1, Type: coherence.InvalRWResp},
			}
			// Warm every block's MHR and PHT first so the timed loop
			// measures steady-state throughput: on a periodic stream a
			// trained predictor performs no allocation at all, and the
			// reported allocs/op must show that even at -benchtime=1x.
			for i := 0; i < 1024*len(seq)*(depth+1); i++ {
				p.Observe(coherence.Addr(uint64(i%1024)*64), seq[i%len(seq)])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Observe(coherence.Addr(uint64(i%1024)*64), seq[i%len(seq)])
			}
		})
	}
}

// BenchmarkSimulation measures the machine simulator itself driving
// the dsmc workload at small scale. Machine and workload construction
// happen outside the timed region (a machine is single-use, so each
// iteration needs a fresh one), and the fired-event count is reported
// as events/sec — the simulator's real figure of merit.
func BenchmarkSimulation(b *testing.B) {
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		app := workload.NewDSMC(16, workload.ScaleSmall)
		cfg := sim.DefaultConfig()
		m, err := machine.New(cfg, stache.DefaultOptions(), app)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Run(100_000_000); err != nil {
			b.Fatal(err)
		}
		events += m.Engine().Fired()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// BenchmarkEngine measures the event queue in isolation: one At (push)
// plus its share of Step (pop) per op, over a queue held at a steady
// depth of 1024 pending events — the regime the protocol keeps the
// heap in. The typed inline heap must run this allocation-free.
func BenchmarkEngine(b *testing.B) {
	var e sim.Engine
	nop := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.At(sim.Time(i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+sim.Time(i%64), nop)
		e.Step()
	}
}

// BenchmarkServeSLO is the online prediction service's SLO benchmark:
// each iteration deploys a full cosmos-serve cluster — server with a
// durable store, paced clients, a mildly faulty wire — and runs a
// fixed workload to completion with periodic checkpointing on. It
// reports the service-level numbers the SLO gate watches: simulated
// observation throughput and p99 observation→response latency. The
// wall-clock time per op is the harness cost (engine + transport +
// snapshot/WAL I/O), gated by cosmos-bench -compare like the other
// headline benchmarks.
func BenchmarkServeSLO(b *testing.B) {
	defer reportGC(b)()
	const streams, obs = 4, 400
	workload := serve.GenWorkload(1, streams, obs)
	var tput float64
	var p99 uint64
	for i := 0; i < b.N; i++ {
		c, err := serve.NewCluster(serve.HarnessConfig{
			Dir: b.TempDir(),
			Server: serve.Config{
				Predictor:     core.Config{Depth: 2, FilterMax: 1},
				SnapshotEvery: 64,
			},
			Plan: faults.Plan{Seed: 2, DropProb: 0.01, JitterNs: 100},
		}, workload)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		var lats []uint64
		for _, cl := range c.Clients {
			lats = append(lats, cl.LatNs...)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st := c.Srv.Stats()
		tput = float64(st.Applied) / float64(c.Eng.Now()) * 1e9
		p99 = lats[int(0.99*float64(len(lats)-1))]
	}
	b.ReportMetric(tput, "sim_obs/s")
	b.ReportMetric(float64(p99), "p99_ns")
}

// BenchmarkEvaluateThroughput measures trace evaluation speed
// (records/op is constant; time per op is what matters).
func BenchmarkEvaluateThroughput(b *testing.B) {
	s := fullSuite(b)
	tr, err := s.Trace("moldyn")
	if err != nil {
		b.Fatal(err)
	}
	defer reportGC(b)()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Evaluate(tr, core.Config{Depth: 2}, stats.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "records")
}

// BenchmarkEvaluateThroughputSharded is the same evaluation through
// the slot-sharded path at 8 requested workers (the pool self-caps at
// GOMAXPROCS). Results are identical to the serial path; the
// equivalence tests pin that, this measures the wall-clock difference.
func BenchmarkEvaluateThroughputSharded(b *testing.B) {
	s := fullSuite(b)
	tr, err := s.Trace("moldyn")
	if err != nil {
		b.Fatal(err)
	}
	tr.Partition() // build the memoized view outside the timed region
	defer reportGC(b)()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Evaluate(tr, core.Config{Depth: 2}, stats.Options{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Records)), "records")
}

// BenchmarkScaleSweep measures one streamed scalesweep cell (capture
// plus windowed evaluation, never materializing the trace) as the
// machine grows past the full-map directory's 64-node bound. The node
// axis is the variable under test, so the workload defaults to small
// scale — the 1024-node cell stays affordable while still exercising
// limited-pointer overflow. B/op is the headline: the streaming path's
// allocations must stay flat as nodes grow.
func BenchmarkScaleSweep(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes%d", nodes), func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Scale = benchScale(b, workload.ScaleSmall)
			cfg.TraceCache = os.Getenv("COSMOS_TRACE_CACHE")
			cfg.Machine.Nodes = nodes
			cfg.Stache.DirFormat = stache.DirLimitedPtr
			s := experiments.NewSuite(cfg)
			b.ReportAllocs()
			defer reportGC(b)()
			b.ResetTimer()
			var res *stats.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = s.EvaluateStreamed("dsmc", core.Config{Depth: 1}, stats.StreamOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Overall.Total), "messages")
		})
	}
}
