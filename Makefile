# Build, lint, and test the whole module. `make` (or `make check`) is
# the CI gate: lint (vet + cosmosvet), build, and the full test suite
# under the race detector. `make ci` mirrors the GitHub workflow
# exactly.

GO ?= go

.PHONY: check ci lint vet cosmosvet build test race bench chaos examples clean

check: lint build race

ci: lint build test race chaos

lint: vet cosmosvet

vet:
	$(GO) vet ./...

cosmosvet:
	$(GO) run ./cmd/cosmosvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# A short chaos sweep with the runtime invariant monitor on: 25 seeds
# of random fault plans and delivery perturbation over the unmodified
# protocol must find nothing.
chaos:
	$(GO) run ./cmd/cosmos-chaos -seeds 25 -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producer_consumer
	$(GO) run ./examples/custom_workload
	$(GO) run ./examples/accelerate
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
