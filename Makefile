# Build, lint, and test the whole module. `make` (or `make check`) is
# the CI gate: lint (vet + cosmosvet), build, and the full test suite
# under the race detector. `make ci` mirrors the GitHub workflow
# exactly.

GO ?= go

.PHONY: check ci lint vet cosmosvet build test race bench bench-json bench-smoke bench-gate bench-trend warm-cache chaos chaos-spec serve-chaos scale-smoke examples clean

check: lint build race

ci: lint build test race chaos chaos-spec serve-chaos scale-smoke

lint: vet cosmosvet

vet:
	$(GO) vet ./...

cosmosvet:
	$(GO) run ./cmd/cosmosvet -allow-report ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Capture the full benchmark suite as a labelled JSON snapshot next to
# the code: `make bench-json BENCH_LABEL=optimized` appends to BENCH_<date>.json.
BENCH_DATE  ?= $(shell date +%Y%m%d)
BENCH_LABEL ?= snapshot
bench-json:
	$(GO) run ./cmd/cosmos-bench -label $(BENCH_LABEL) -o BENCH_$(BENCH_DATE).json

# A cheap CI guard: the benchmark harness itself must stay runnable.
# Small scale, one iteration each — measures nothing, catches rot.
# Points the harness at the shared trace cache when one was warmed.
TRACE_CACHE ?= .trace-cache
bench-smoke:
	COSMOS_BENCH_SCALE=small COSMOS_TRACE_CACHE=$(TRACE_CACHE) $(GO) test -bench . -benchtime 1x -run '^$$' .

# Simulate and cache every benchmark trace once (small scale for CI);
# subsequent tables/bench runs pointed at TRACE_CACHE load instead of
# simulating.
warm-cache:
	$(GO) run ./cmd/cosmos-tables -scale small -trace-cache $(TRACE_CACHE) -warm-cache

# The CI performance gate: capture a small-scale snapshot against the
# warm cache and compare it with the committed baseline. The threshold
# is deliberately generous (shared CI runners are noisy and slower than
# the reference container); it exists to catch order-of-magnitude
# regressions — an accidental serial fallback, a cache that stopped
# hitting — not single-digit drift. Allocation counts are deterministic
# on any machine, so the allocs/op gate is far tighter: it catches a
# reintroduced per-event closure or a lost buffer reuse immediately.
BENCH_GATE_THRESHOLD ?= 300
BENCH_GATE_ALLOC_THRESHOLD ?= 20
bench-gate:
	rm -f /tmp/bench-gate.json
	COSMOS_BENCH_SCALE=small $(GO) run ./cmd/cosmos-bench -label gate -trace-cache $(TRACE_CACHE) \
		-bench 'Table5|Table6|EvaluateThroughput|ServeSLO|ScaleSweep' -o /tmp/bench-gate.json
	$(GO) run ./cmd/cosmos-bench -compare -threshold $(BENCH_GATE_THRESHOLD) \
		-alloc-threshold $(BENCH_GATE_ALLOC_THRESHOLD) BENCH_SMOKE_BASELINE.json /tmp/bench-gate.json

# The performance ledger: snapshot-over-snapshot ns/op history for
# every benchmark label in every committed snapshot file. Fails on a
# malformed snapshot (missing label/date, empty or duplicated
# benchmark lists), so a broken append is caught before it poisons the
# record.
bench-trend:
	@for f in BENCH_*.json; do $(GO) run ./cmd/cosmos-bench -trend $$f || exit 1; done

# A short chaos sweep with the runtime invariant monitor on: 25 seeds
# of random fault plans and delivery perturbation over the unmodified
# protocol must find nothing — at a small machine (16 nodes, where
# every node races on every line) and at the paper's 64-node size.
chaos:
	$(GO) run ./cmd/cosmos-chaos -seeds 25 -quick -nodes 16
	$(GO) run ./cmd/cosmos-chaos -seeds 25 -quick -nodes 64

# One scalesweep cell past the full-map directory's 64-node cliff,
# with the runtime invariant monitor on: every benchmark simulated at
# 256 nodes under the limited-pointer format must stay coherent where
# the exact bitmask cannot go.
scale-smoke:
	$(GO) run ./cmd/cosmos-tables -extra scalesweep -scale small -nodes 256 -dir-format limited -invariants

# The speculation sweep: same fault plans with every Table 2 action
# armed behind the governor — rollback bookkeeping must stay invariant-
# clean under faults. The second leg is a self-check: a planted
# dangling speculative entry must be caught, so the expected exit
# status is exactly 1 (violations found); 0 (missed) and 2 (usage
# error) both fail the target.
chaos-spec:
	$(GO) run ./cmd/cosmos-chaos -seeds 25 -quick -spec
	$(GO) run ./cmd/cosmos-chaos -seeds 4 -quick -corrupt spec-dangling -o /tmp/chaos-spec >/dev/null; test $$? -eq 1

# The serve crash sweep: 100 seeds of kill-and-restore over the online
# prediction service — every restored server must be byte-identical to
# one that never died. The remaining legs are self-checks: deliberately
# corrupted stores (payload damage, mid-WAL damage, a future container
# version) must each be refused with the matching error class, so the
# expected exit status is exactly 1; 0 (missed) and 2 (wrong class or
# usage error) both fail the target.
serve-chaos:
	$(GO) run ./cmd/cosmos-serve -seeds 100
	$(GO) run ./cmd/cosmos-serve -seeds 4 -corrupt snapshot >/dev/null; test $$? -eq 1
	$(GO) run ./cmd/cosmos-serve -seeds 4 -corrupt wal >/dev/null; test $$? -eq 1
	$(GO) run ./cmd/cosmos-serve -seeds 4 -corrupt version >/dev/null; test $$? -eq 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producer_consumer
	$(GO) run ./examples/custom_workload
	$(GO) run ./examples/accelerate
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
