# Build, lint, and test the whole module. `make` (or `make check`) is
# the CI gate: vet, build, and the full test suite under the race
# detector.

GO ?= go

.PHONY: check vet build test race bench examples clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producer_consumer
	$(GO) run ./examples/custom_workload
	$(GO) run ./examples/accelerate
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
