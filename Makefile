# Build, lint, and test the whole module. `make` (or `make check`) is
# the CI gate: lint (vet + cosmosvet), build, and the full test suite
# under the race detector. `make ci` mirrors the GitHub workflow
# exactly.

GO ?= go

.PHONY: check ci lint vet cosmosvet build test race bench bench-json bench-smoke chaos examples clean

check: lint build race

ci: lint build test race chaos

lint: vet cosmosvet

vet:
	$(GO) vet ./...

cosmosvet:
	$(GO) run ./cmd/cosmosvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Capture the full benchmark suite as a labelled JSON snapshot next to
# the code: `make bench-json BENCH_LABEL=optimized` appends to BENCH_<date>.json.
BENCH_DATE  ?= $(shell date +%Y%m%d)
BENCH_LABEL ?= snapshot
bench-json:
	$(GO) run ./cmd/cosmos-bench -label $(BENCH_LABEL) -o BENCH_$(BENCH_DATE).json

# A cheap CI guard: the benchmark harness itself must stay runnable.
# Small scale, one iteration each — measures nothing, catches rot.
bench-smoke:
	COSMOS_BENCH_SCALE=small $(GO) test -bench . -benchtime 1x -run '^$$' .

# A short chaos sweep with the runtime invariant monitor on: 25 seeds
# of random fault plans and delivery perturbation over the unmodified
# protocol must find nothing.
chaos:
	$(GO) run ./cmd/cosmos-chaos -seeds 25 -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/producer_consumer
	$(GO) run ./examples/custom_workload
	$(GO) run ./examples/accelerate
	$(GO) run ./examples/faults

clean:
	$(GO) clean ./...
